//! The per-node serving brain, instantiable N times behind a cluster
//! router.
//!
//! PR 2's `Server` fused three things into one run loop: per-node
//! scheduling state (batching queue, offload executor, online
//! controller), stream-wide measurement (per-query latency accounting,
//! warm-up windows), and the event loop itself. Cluster serving needs
//! the first to exist once *per node* while the second stays global, so
//! this module splits them:
//!
//! * [`NodeCore`] — one node's scheduling brain: one [`TenantLane`]
//!   per co-located service (its batching queue and its online
//!   controller), a shared GPU offload executor, and the node's
//!   backpressure gauges. A [`crate::Server`] owns one; a
//!   [`crate::Cluster`] owns N.
//! * [`StreamStats`] — stream-wide measurement shared across nodes:
//!   which queries are in flight, where each was routed, and the
//!   latency/throughput recorders (global and per-tenant) the final
//!   report is cut from.
//! * [`serve_virtual_multi`] — the deterministic virtual-time event
//!   loop over N nodes behind a [`crate::Router`]; `Server` runs it
//!   with a single node, `Cluster` with the whole topology.
//!
//! Multi-tenancy is the paper's co-located-services setting (§III):
//! several zoo models share one engine pool, each batching and tuning
//! its own knobs. The pool itself is arbitrated by deficit round-robin
//! across the per-tenant ready queues, so a heavy tenant's backlog
//! cannot starve a light tenant of workers — each lane earns
//! `weight × quantum` items of service per round and banks what it
//! does not use.

use crate::batcher::{Batch, BatchQueue, BatchStats};
use crate::cluster::Router;
use crate::controller::OnlineController;
use crate::gpu::GpuExecutor;
use crate::report::ServerReport;
use crate::server::ServerOptions;
use drs_core::{
    assert_nonempty_queries, secs_to_ns, stream_offered_qps, us_to_ns, EventQueue, NodeId,
    SchedulerPolicy, SimTime, TenantBreakdown, TenantId, NS_PER_SEC,
};
use drs_metrics::{LatencyRecorder, StreamingLatency};
use drs_platform::{CpuPlatform, GpuPlatform, ModelCost};
use drs_query::Query;
use drs_shard::ShardGeometry;
use drs_telemetry::{ControlDecision, MetricsSink, QuerySpan, Stage, TraceSink, STAGE_COUNT};
use std::collections::{BTreeMap, VecDeque};

/// One node's hardware and worker allocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeSetup {
    pub cpu: CpuPlatform,
    pub gpu: Option<GpuPlatform>,
    pub workers: usize,
}

/// One tenant's serving parameters, as a node's lanes are built from
/// them.
#[derive(Debug, Clone)]
pub(crate) struct TenantSetup {
    /// Knobs served when no controller is attached (and the seed of
    /// the controller's threshold phase).
    pub policy: SchedulerPolicy,
    /// Fair-share weight on the shared-pool arbiter.
    pub weight: u32,
    /// The p95 tier the tenant's report breakdown is judged against.
    pub report_sla_ms: f64,
    /// Overrides the controller's SLA normalization with the tenant's
    /// own tier; `None` keeps the `ControllerConfig` value (the
    /// single-tenant constructors' historical behaviour).
    pub controller_sla_ms: Option<f64>,
}

impl TenantSetup {
    /// The single-service tenant every legacy constructor reduces to.
    pub fn solo(policy: SchedulerPolicy, report_sla_ms: f64) -> Self {
        TenantSetup {
            policy,
            weight: 1,
            report_sla_ms,
            controller_sla_ms: None,
        }
    }
}

/// `(retunes, batch trajectory, threshold trajectory)` extracted from
/// one lane's controller at report time.
pub(crate) type ControllerOutputs = (u64, Vec<(u32, f64)>, Vec<(u32, f64)>);

/// Where one arrival went inside a node.
pub(crate) enum Route {
    /// Offloaded whole; device service runs over `[start, done]` in
    /// virtual time (`start > now` means the FIFO queued it).
    Gpu {
        /// Device service start (FIFO wait ends here).
        start: SimTime,
        /// Device completion time.
        done: SimTime,
    },
    /// Split/coalesced; these batches (of the query's tenant lane) are
    /// ready to dispatch now.
    Cpu(Vec<Batch>),
}

/// One tenant's scheduling lane inside a node: its own batching queue
/// and its own online controller, tuning independently of every other
/// lane (the paper's per-model knobs).
#[derive(Debug)]
struct TenantLane {
    fallback_policy: SchedulerPolicy,
    controller: Option<OnlineController>,
    batcher: BatchQueue,
    /// Set when the lane's controller changed its policy; the serving
    /// loop must re-read it and re-batch the lane's queued backlog.
    policy_dirty: bool,
}

impl TenantLane {
    fn policy(&self) -> SchedulerPolicy {
        self.controller
            .as_ref()
            .map_or(self.fallback_policy, |c| c.policy())
    }
}

/// One node's scheduling brain: per-tenant lanes + shared offload
/// executor + backpressure gauges. No measurement state — that lives
/// in [`StreamStats`].
pub(crate) struct NodeCore {
    lanes: Vec<TenantLane>,
    pub gpu: Option<GpuExecutor>,
    pub backpressure_stalls: u64,
    pub max_queue_depth: usize,
}

impl NodeCore {
    /// Builds the brain for one node, one lane per tenant. A node
    /// without an accelerator serves each tenant's policy with the
    /// offload knob stripped (its controllers then skip the threshold
    /// phase), so one cluster-wide spec can drive a mixed fleet.
    pub fn new(
        costs: &[ModelCost],
        tenants: &[TenantSetup],
        setup: &NodeSetup,
        opts: &ServerOptions,
    ) -> Self {
        assert_eq!(costs.len(), tenants.len(), "one cost model per tenant");
        // Round, do not floor-at-1: a zero timeout must stay zero
        // (coalescing disabled).
        let timeout_ns = (opts.batching.coalesce_timeout_us * 1e3).round() as SimTime;
        let lanes = tenants
            .iter()
            .map(|t| {
                let node_policy = if setup.gpu.is_some() {
                    t.policy
                } else {
                    SchedulerPolicy {
                        max_batch: t.policy.max_batch,
                        gpu_threshold: None,
                    }
                };
                let controller = opts.controller.clone().map(|c| {
                    let c = match t.controller_sla_ms {
                        Some(sla) => c.with_sla_ms(sla),
                        None => c,
                    };
                    OnlineController::new(c, node_policy, setup.gpu.is_some())
                });
                let initial = controller.as_ref().map_or(node_policy, |c| c.policy());
                TenantLane {
                    fallback_policy: node_policy,
                    controller,
                    batcher: BatchQueue::new(initial.max_batch, timeout_ns),
                    policy_dirty: false,
                }
            })
            .collect();
        NodeCore {
            lanes,
            gpu: setup
                .gpu
                .map(|g| GpuExecutor::new_multi(costs.to_vec(), setup.cpu, g)),
            backpressure_stalls: 0,
            max_queue_depth: 0,
        }
    }

    /// The policy lane `t` applies right now.
    pub fn policy(&self, t: usize) -> SchedulerPolicy {
        self.lanes[t].policy()
    }

    /// Lane `t`'s batching queue.
    pub fn batcher(&self, t: usize) -> &BatchQueue {
        &self.lanes[t].batcher
    }

    /// Lane `t`'s batching queue, mutably.
    pub fn batcher_mut(&mut self, t: usize) -> &mut BatchQueue {
        &mut self.lanes[t].batcher
    }

    /// The earliest coalesce deadline across all lanes (the real
    /// runtimes' wake-up bound).
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.batcher.deadline()).min()
    }

    /// Batching counters summed over every lane.
    pub fn batch_stats(&self) -> BatchStats {
        let mut total = BatchStats::default();
        for lane in &self.lanes {
            total.merge(lane.batcher.stats());
        }
        total
    }

    /// Re-batches everything lane `t` has not dispatched yet at its
    /// retuned knob: re-reads the policy, flushes the open coalesce
    /// residual (a retune collapses the residual's remaining window to
    /// *now* — old work must not wait out a window formed under the
    /// old knob), and repacks `backlog` followed by that residual at
    /// the new batch size. All three runtimes route their retune
    /// through here so the stale-coalesce fix cannot drift between
    /// them. (Backlog first, then the flushed residual: its items
    /// arrived after the backlog's, and `reform` preserves per-query
    /// item order.)
    pub fn rebatch_lane(&mut self, t: usize, mut backlog: Vec<Batch>) -> Vec<Batch> {
        let pol = self.lanes[t].policy();
        let batcher = &mut self.lanes[t].batcher;
        let mut flushed = Vec::new();
        batcher.set_max_batch(pol.max_batch, &mut flushed);
        batcher.flush_all(&mut flushed);
        backlog.extend(flushed);
        let mut out = Vec::new();
        batcher.reform(backlog, &mut out);
        out
    }

    /// Routes one arrival inside the node: GPU offload or batch/split
    /// onto the query's tenant lane.
    pub fn on_arrival(&mut self, now: SimTime, q: &Query) -> Route {
        let t = q.tenant.index();
        if let Some(c) = &mut self.lanes[t].controller {
            c.on_arrival(now);
        }
        let pol = self.lanes[t].policy();
        if let Some(gpu) = self.gpu.as_mut().filter(|_| pol.offloads(q.size)) {
            let (start, done) = gpu.schedule_timed(now, t, q.size);
            Route::Gpu { start, done }
        } else {
            let mut out = Vec::new();
            let batcher = &mut self.lanes[t].batcher;
            batcher.set_max_batch(pol.max_batch, &mut out);
            batcher.push(now, q.id, q.size, &mut out);
            Route::Cpu(out)
        }
    }

    /// Feeds one finished query's latency to its lane's controller;
    /// returns whether that controller is settled (for the settled-tail
    /// recorder).
    pub fn on_query_done(&mut self, now: SimTime, t: usize, latency_ms: f64) -> bool {
        let lane = &mut self.lanes[t];
        match &mut lane.controller {
            Some(c) => {
                if c.on_complete(now, latency_ms) {
                    lane.policy_dirty = true;
                }
                c.is_settled()
            }
            None => true,
        }
    }

    /// Feeds one arrival to lane `t`'s controller without routing any
    /// work — the sharded merge home's control-loop signal (the work
    /// itself lands as partials on every shard node).
    pub fn note_controller_arrival(&mut self, now: SimTime, t: usize) {
        if let Some(c) = &mut self.lanes[t].controller {
            c.on_arrival(now);
        }
    }

    /// Routes one *shard partial* into the node: batch/split onto the
    /// query's tenant lane, bypassing both the GPU (sharded serving is
    /// CPU-path) and the controller's arrival accounting (the merge
    /// home owns the query's control-loop signal; remote shards just
    /// gather).
    pub fn on_partial_arrival(&mut self, now: SimTime, q: &Query) -> Vec<Batch> {
        let t = q.tenant.index();
        let pol = self.lanes[t].policy();
        let mut out = Vec::new();
        let batcher = &mut self.lanes[t].batcher;
        batcher.set_max_batch(pol.max_batch, &mut out);
        batcher.push(now, q.id, q.size, &mut out);
        out
    }

    /// Whether lane `t`'s policy changed since the last check (clears
    /// the flag).
    pub fn take_policy_dirty(&mut self, t: usize) -> bool {
        std::mem::take(&mut self.lanes[t].policy_dirty)
    }

    /// Drains every lane controller's committed re-tune decisions,
    /// stamping each with its lane's tenant index. The serving loop
    /// fills `node` (the brain does not know its own id) and feeds the
    /// result to the fleet-pulse decision log.
    pub fn drain_decisions(&mut self) -> Vec<ControlDecision> {
        let mut out = Vec::new();
        for (t, lane) in self.lanes.iter_mut().enumerate() {
            if let Some(c) = &mut lane.controller {
                for mut d in c.drain_decisions() {
                    d.tenant = t;
                    out.push(d);
                }
            }
        }
        out
    }

    pub fn note_queue_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Consumes the brain, returning each lane's controller outputs:
    /// `(retunes, batch trajectory, threshold trajectory)`, in tenant
    /// order.
    pub fn into_controller_outputs(self) -> Vec<ControllerOutputs> {
        self.lanes
            .into_iter()
            .map(|lane| match lane.controller {
                Some(c) => (c.retunes, c.batch_trajectory, c.threshold_trajectory),
                None => (0, Vec::new(), Vec::new()),
            })
            .collect()
    }
}

#[derive(Debug)]
struct QueryState {
    arrival: SimTime,
    items_left: u32,
    measured: bool,
    node: usize,
    tenant: usize,
    /// Virtual time the exchange + merge will take once the last
    /// partial lands (0 = unsharded: complete immediately).
    merge_ns: SimTime,
    /// Span bookkeeping: whether the query ran on the offload path,
    /// and the lifecycle marks of the segment that completed it (last
    /// credit wins — a deterministic attribution, since event order is
    /// deterministic).
    offloaded: bool,
    /// When the batch carrying the attributed segment was enqueued
    /// (CPU path) — the end of its coalesce wait.
    formed: SimTime,
    /// When that batch was dispatched to a worker, or when device
    /// service started (GPU path).
    dispatched: SimTime,
    /// When compute finished for a sharded query (the last partial's
    /// credit time), frozen before the exchange/merge delay runs.
    service_done: SimTime,
    /// The fabric-only share of `merge_ns`, preserved for the span
    /// after `merge_ns` itself is zeroed at merge scheduling.
    span_exchange_ns: SimTime,
}

impl QueryState {
    /// Cuts the query's lifecycle span: compute ended at
    /// `service_end`, the query completed at `end` (for unsharded
    /// queries the two coincide). Marks are clamped into monotone
    /// order, so the stage durations decompose `end - arrival`
    /// *exactly* by construction — also on the real runtimes'
    /// wall-derived clocks.
    fn span(&self, query_id: u64, service_end: SimTime, end: SimTime) -> QuerySpan {
        let mut stages = [0u64; STAGE_COUNT];
        let service_end = service_end.clamp(self.arrival, end);
        let dispatched = self.dispatched.clamp(self.arrival, service_end);
        if self.offloaded {
            stages[Stage::QueueWait.index()] = dispatched - self.arrival;
        } else {
            let formed = self.formed.clamp(self.arrival, dispatched);
            stages[Stage::CoalesceWait.index()] = formed - self.arrival;
            stages[Stage::BatchResidency.index()] = dispatched - formed;
        }
        stages[Stage::EngineService.index()] = service_end - dispatched;
        let merge = end - service_end;
        let exchange = self.span_exchange_ns.min(merge);
        stages[Stage::ShardExchange.index()] = exchange;
        stages[Stage::DenseTail.index()] = merge - exchange;
        QuerySpan {
            query_id,
            tenant: self.tenant,
            node: self.node,
            arrival_ns: self.arrival,
            end_ns: end,
            stages,
        }
    }
}

/// One fully completed query, as reported by
/// [`StreamStats::credit_items`].
pub(crate) struct FinishedQuery {
    pub node: usize,
    pub tenant: usize,
    pub latency_ms: f64,
    pub measured: bool,
    /// The query's stage timeline (`latency_ms` is its exact total).
    pub span: QuerySpan,
}

/// What crediting items against a query produced.
pub(crate) enum Credit {
    /// The query still has items in flight.
    Pending,
    /// The query completed end to end.
    Done(FinishedQuery),
    /// The last shard partial landed; the query completes after its
    /// exchange/merge delay (caller schedules the merge at the home
    /// node and later calls [`StreamStats::finish_exchanged`]).
    AwaitExchange {
        /// Merge home node.
        home: usize,
        /// Exchange + dense-tail delay, virtual ns.
        delay: SimTime,
    },
}

/// Stream-wide measurement shared by every node of a run.
pub(crate) struct StreamStats {
    warmup_n: u64,
    queries: BTreeMap<u64, QueryState>,
    latency: LatencyRecorder,
    settled: LatencyRecorder,
    latencies_ms: Vec<f64>,
    completed_measured: u64,
    /// Per-tenant slices of the window, in tenant order — streaming
    /// digests, so a long soak's tenant tails cost constant memory.
    tenant_latency: Vec<StreamingLatency>,
    tenant_completed: Vec<u64>,
    items_total: u64,
    items_gpu: u64,
    /// Accumulated exchange + merge delay across measured sharded
    /// queries, and how many paid one.
    exchange_ns_total: u128,
    exchanged: u64,
    window_start: Option<SimTime>,
    window_end: SimTime,
    /// The stream's first arrival on this runtime's clock. Recorded
    /// spans are rebased to it, so span timestamps read "ns since the
    /// first arrival" on every runtime — the virtual loop clocks
    /// events at absolute arrival timestamps while the real runtimes
    /// anchor model time at the first arrival, and the rebase is what
    /// lets offload-all spans compare bit-for-bit across the two.
    span_epoch: Option<SimTime>,
}

impl StreamStats {
    pub fn new(num_queries: usize, warmup_frac: f64, tenants: usize) -> Self {
        StreamStats {
            warmup_n: (num_queries as f64 * warmup_frac) as u64,
            queries: BTreeMap::new(),
            latency: LatencyRecorder::with_capacity(num_queries),
            settled: LatencyRecorder::new(),
            latencies_ms: Vec::new(),
            completed_measured: 0,
            tenant_latency: (0..tenants).map(|_| StreamingLatency::new()).collect(),
            tenant_completed: vec![0; tenants],
            items_total: 0,
            items_gpu: 0,
            exchange_ns_total: 0,
            exchanged: 0,
            window_start: None,
            window_end: 0,
            span_epoch: None,
        }
    }

    /// Registers an arrival routed to `node`; returns whether the query
    /// is inside the measurement window.
    pub fn note_arrival(&mut self, now: SimTime, q: &Query, node: usize) -> bool {
        self.note_arrival_sharded(now, q, node, 1, 0, 0)
    }

    /// Registers a sharded arrival: the query fans to `fanout` shard
    /// nodes (each contributing `q.size` partial items) and, once the
    /// last partial lands, completes after `merge_ns` of
    /// exchange + merge at `home`. `exchange_ns` is the cross-node
    /// (fabric-only) share of that delay — zero for a plan with no
    /// remote peers — and is what the exchange counters report.
    /// Returns whether the query is inside the measurement window.
    pub fn note_arrival_sharded(
        &mut self,
        now: SimTime,
        q: &Query,
        home: usize,
        fanout: u32,
        exchange_ns: SimTime,
        merge_ns: SimTime,
    ) -> bool {
        assert!(fanout >= 1, "a query must reach at least one node");
        assert!(exchange_ns <= merge_ns, "exchange is part of the merge");
        assert!(
            q.tenant.index() < self.tenant_completed.len(),
            "query {} tagged {} but the stack serves {} tenant(s)",
            q.id,
            q.tenant,
            self.tenant_completed.len()
        );
        let measured = q.id >= self.warmup_n;
        self.span_epoch.get_or_insert(now);
        let prev = self.queries.insert(
            q.id,
            QueryState {
                arrival: now,
                items_left: q.size * fanout,
                measured,
                node: home,
                tenant: q.tenant.index(),
                merge_ns,
                offloaded: false,
                formed: now,
                dispatched: now,
                service_done: now,
                span_exchange_ns: exchange_ns,
            },
        );
        assert!(prev.is_none(), "duplicate query id {}", q.id);
        if measured {
            self.items_total += q.size as u64;
            self.window_start.get_or_insert(now);
            if exchange_ns > 0 {
                self.exchange_ns_total += exchange_ns as u128;
                self.exchanged += 1;
            }
        }
        measured
    }

    /// Credits offloaded items to the GPU work share.
    pub fn note_gpu_items(&mut self, measured: bool, size: u32) {
        if measured {
            self.items_gpu += size as u64;
        }
    }

    pub fn remaining_items(&self, qid: u64) -> u32 {
        self.queries.get(&qid).expect("known query").items_left
    }

    /// Marks a query as GPU-offloaded with device service starting at
    /// `start` (its span then reads queue-wait → engine-service).
    pub fn span_gpu(&mut self, qid: u64, start: SimTime) {
        let st = self.queries.get_mut(&qid).expect("known query");
        st.offloaded = true;
        st.dispatched = start;
    }

    /// Stamps the CPU-path lifecycle marks of a batch about to credit
    /// one of the query's segments: when the batch left the coalesce
    /// buffer (`formed`) and when a worker picked it up
    /// (`dispatched`). The last credit's marks win.
    pub fn span_batch(&mut self, qid: u64, formed: SimTime, dispatched: SimTime) {
        let st = self.queries.get_mut(&qid).expect("known query");
        st.formed = formed;
        st.dispatched = dispatched;
    }

    /// Credits `items` of a query as done. On the query's last item:
    /// unsharded queries finish immediately ([`Credit::Done`] — the
    /// caller feeds the latency to the owning lane's controller and
    /// calls [`StreamStats::record`]); sharded queries return
    /// [`Credit::AwaitExchange`] and finish via
    /// [`StreamStats::finish_exchanged`] after the merge delay.
    pub fn credit_items(&mut self, now: SimTime, qid: u64, items: u32) -> Credit {
        let st = self.queries.get_mut(&qid).expect("known query");
        st.items_left -= items;
        if st.items_left > 0 {
            return Credit::Pending;
        }
        if st.merge_ns > 0 {
            let (home, delay) = (st.node, st.merge_ns);
            // Mark the merge as scheduled so a second crediting cannot
            // double-fire it, and freeze the compute end for the span.
            st.merge_ns = 0;
            st.service_done = now;
            return Credit::AwaitExchange { home, delay };
        }
        let st = self.queries.remove(&qid).expect("known query");
        Credit::Done(FinishedQuery {
            node: st.node,
            tenant: st.tenant,
            latency_ms: (now - st.arrival) as f64 / 1e6,
            measured: st.measured,
            span: st.span(qid, now, now),
        })
    }

    /// Completes a sharded query whose exchange/merge delay elapsed at
    /// `now`.
    pub fn finish_exchanged(&mut self, now: SimTime, qid: u64) -> FinishedQuery {
        let st = self.queries.remove(&qid).expect("known query");
        debug_assert_eq!(st.items_left, 0, "merge fired with items in flight");
        FinishedQuery {
            node: st.node,
            tenant: st.tenant,
            latency_ms: (now - st.arrival) as f64 / 1e6,
            measured: st.measured,
            span: st.span(qid, st.service_done, now),
        }
    }

    /// Records a finished query's latency (after its lane's controller
    /// saw it, so the settled flag is current), its fleet-pulse window
    /// observation when the pulse is live, and its span when the sink
    /// is live — measured queries only, matching every other recorder
    /// here.
    pub fn record<S: TraceSink, M: MetricsSink>(
        &mut self,
        now: SimTime,
        f: &FinishedQuery,
        settled: bool,
        sink: &mut S,
        pulse: &mut M,
    ) {
        if f.measured {
            self.latency.record_ms(f.latency_ms);
            self.latencies_ms.push(f.latency_ms);
            if settled {
                self.settled.record_ms(f.latency_ms);
            }
            self.tenant_latency[f.tenant].observe_ms(f.latency_ms);
            self.tenant_completed[f.tenant] += 1;
            self.completed_measured += 1;
            self.window_end = self.window_end.max(now);
            if M::ENABLED {
                pulse.observe("latency_ms", f.latency_ms);
                pulse.inc("completed_total", 1);
            }
            if S::ENABLED {
                let epoch = self.span_epoch.unwrap_or(0);
                let mut span = f.span;
                span.arrival_ns -= epoch;
                span.end_ns -= epoch;
                debug_assert_eq!(span.latency_ms().to_bits(), f.latency_ms.to_bits());
                debug_assert_eq!(span.validate(), Ok(()));
                sink.record(&span);
            }
        }
    }
}

/// Per-node utilization integrals accumulated by a serving loop.
pub(crate) struct NodeUtilization {
    pub busy_core_ns: u128,
    pub workers: usize,
}

/// Directly measured CPU utilization from a wall-clock run, replacing
/// the virtual-time busy integrals: one value per node (prices each
/// node's power at its own load) plus the fleet-wide figure reported.
pub(crate) struct CpuUtilOverride {
    pub per_node: Vec<f64>,
    pub overall: f64,
}

/// Everything a serving loop hands back for report assembly.
pub(crate) struct RunOutcome {
    pub stats: StreamStats,
    pub cores: Vec<NodeCore>,
    pub setups: Vec<NodeSetup>,
    pub tenant_setups: Vec<TenantSetup>,
    pub utilization: Vec<NodeUtilization>,
    /// Measurement horizon in virtual ns (or model-time ns for real
    /// runs) the utilization integrals are normalized against.
    pub end_ns: SimTime,
    /// Queries dispatched to each node by the router.
    pub node_queries: Vec<u64>,
    /// Overrides the per-node busy-integral CPU utilization when the
    /// caller measured it directly (the real engine's wall-clock
    /// integral).
    pub cpu_utilization_override: Option<CpuUtilOverride>,
}

/// Cuts the final [`ServerReport`] from a finished run: aggregates
/// batching stats across nodes and lanes, averages utilization, sums
/// power, slices the window per tenant, and reports node 0's
/// controller trajectory for tenant 0 (the representative lane — every
/// node climbs the same ladders).
pub(crate) fn assemble_report(outcome: RunOutcome, offered_qps: f64) -> ServerReport {
    let RunOutcome {
        stats,
        cores,
        setups,
        tenant_setups,
        utilization,
        end_ns,
        node_queries,
        cpu_utilization_override,
    } = outcome;
    let end = end_ns.max(1);

    let per_node_cpu_util: Vec<f64> = match &cpu_utilization_override {
        Some(o) => o.per_node.clone(),
        None => utilization
            .iter()
            .map(|u| u.busy_core_ns as f64 / (u.workers.max(1) as f64 * end as f64))
            .collect(),
    };
    let cpu_utilization = match &cpu_utilization_override {
        Some(o) => o.overall,
        None => per_node_cpu_util.iter().sum::<f64>() / per_node_cpu_util.len().max(1) as f64,
    };

    let per_node_gpu_util: Vec<Option<f64>> = cores
        .iter()
        .map(|c| {
            c.gpu
                .as_ref()
                .map(|g| (g.busy_ns() as f64 / end as f64).min(1.0))
        })
        .collect();
    let gpu_node_count = per_node_gpu_util.iter().flatten().count();
    let gpu_utilization = if gpu_node_count > 0 {
        per_node_gpu_util.iter().flatten().sum::<f64>() / gpu_node_count as f64
    } else {
        0.0
    };

    let mut avg_power_w = 0.0;
    for ((setup, cpu_util), gpu_util) in setups
        .iter()
        .zip(&per_node_cpu_util)
        .zip(&per_node_gpu_util)
    {
        avg_power_w += setup.cpu.power_w(*cpu_util);
        if let (Some(g), Some(u)) = (&setup.gpu, gpu_util) {
            avg_power_w += g.power_w(*u);
        }
    }

    let window_s = match stats.window_start {
        Some(start) if stats.window_end > start => {
            (stats.window_end - start) as f64 / NS_PER_SEC as f64
        }
        _ => 0.0,
    };
    let qps = if window_s > 0.0 {
        stats.completed_measured as f64 / window_s
    } else {
        0.0
    };

    let mut batch_stats = BatchStats::default();
    for c in &cores {
        batch_stats.merge(c.batch_stats());
    }
    let backpressure_stalls: u64 = cores.iter().map(|c| c.backpressure_stalls).sum();
    let max_queue_depth = cores.iter().map(|c| c.max_queue_depth).max().unwrap_or(0);
    let final_policy = cores[0].policy(0);
    let tenant_final_policies: Vec<SchedulerPolicy> = (0..tenant_setups.len())
        .map(|t| cores[0].policy(t))
        .collect();

    let tenant_breakdowns: Vec<TenantBreakdown> = tenant_setups
        .iter()
        .enumerate()
        .map(|(t, ts)| TenantBreakdown {
            tenant: TenantId(t as u32),
            completed: stats.tenant_completed[t],
            qps: if window_s > 0.0 {
                stats.tenant_completed[t] as f64 / window_s
            } else {
                0.0
            },
            latency: stats.tenant_latency[t].summary(),
            sla_ms: ts.report_sla_ms,
        })
        .collect();

    let mut retunes = 0;
    let mut batch_trajectory = Vec::new();
    let mut threshold_trajectory = Vec::new();
    for (i, core) in cores.into_iter().enumerate() {
        for (t, (r, bt, tt)) in core.into_controller_outputs().into_iter().enumerate() {
            retunes += r;
            if i == 0 && t == 0 {
                batch_trajectory = bt;
                threshold_trajectory = tt;
            }
        }
    }

    ServerReport {
        offered_qps,
        completed: stats.completed_measured,
        qps,
        latency: stats.latency.summary(),
        settled_latency: stats.settled.summary(),
        gpu_work_fraction: if stats.items_total > 0 {
            stats.items_gpu as f64 / stats.items_total as f64
        } else {
            0.0
        },
        // On real-path runs the utilization is *measured* against the
        // wall clock (CpuUtilOverride); reporting it is the point.
        cpu_utilization, // lint:allow(clock-taint)
        gpu_utilization,
        avg_power_w,
        qps_per_watt: if avg_power_w > 0.0 {
            qps / avg_power_w
        } else {
            0.0
        },
        window_s,
        batches: batch_stats.batches,
        full_batches: batch_stats.full_batches,
        coalesced_batches: batch_stats.coalesced_batches,
        timeout_flushes: batch_stats.timeout_flushes,
        mean_batch_items: if batch_stats.batches > 0 {
            batch_stats.items as f64 / batch_stats.batches as f64
        } else {
            0.0
        },
        backpressure_stalls,
        max_queue_depth,
        final_policy,
        retunes,
        batch_trajectory,
        threshold_trajectory,
        node_queries,
        exchanged_queries: stats.exchanged,
        mean_exchange_ms: if stats.exchanged > 0 {
            // Completion-weighted across nodes: one global accumulator
            // over every exchanged query, never an average of per-node
            // means (pinned by `tests/sharding.rs`).
            stats.exchange_ns_total as f64 / stats.exchanged as f64 / 1e6
        } else {
            0.0
        },
        tenant_breakdowns,
        tenant_final_policies,
        latencies_ms: stats.latencies_ms,
        // Attached by the traced/pulsed entry points from their sinks'
        // streaming digests; untraced runs have nothing to report.
        stage_breakdown: None,
        pulse: None,
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival {
        idx: usize,
    },
    Coalesce {
        node: usize,
        tenant: usize,
    },
    CpuDone {
        node: usize,
        tenant: usize,
        batch: u64,
    },
    GpuDone {
        node: usize,
        qid: u64,
    },
    /// A sharded query's exchange + merge finished at its home node.
    ExchangeDone {
        node: usize,
        qid: u64,
    },
}

/// Items of shared-pool service a weight-1 tenant earns per
/// deficit-round-robin round. Any value at or above the largest batch
/// guarantees a lane drains at least one batch per round; smaller
/// values simply bank across rounds (classic DRR), at a few extra
/// arbiter iterations.
const DRR_QUANTUM_ITEMS: u64 = 256;

/// The deficit-round-robin discipline itself, shared verbatim by the
/// virtual node and both real-engine runtimes so the two execution
/// layers cannot drift: banked service per lane, per-lane quantum
/// (`weight × DRR_QUANTUM_ITEMS`), and the rotation cursor. Lanes are
/// stored by the caller; the arbiter only owns the fairness state.
pub(crate) struct DrrArbiter {
    deficit: Vec<u64>,
    quantum: Vec<u64>,
    cursor: usize,
}

impl DrrArbiter {
    pub fn new(tenants: &[TenantSetup]) -> Self {
        DrrArbiter {
            deficit: vec![0; tenants.len()],
            quantum: tenants
                .iter()
                .map(|t| t.weight as u64 * DRR_QUANTUM_ITEMS)
                .collect(),
            cursor: 0,
        }
    }

    /// The deficit-round-robin pick: the next `(tenant, item)` the
    /// shared pool should serve, with `items` pricing a queued entry.
    /// Each visit to a lane that cannot afford its head banks one
    /// quantum and moves on; an emptied lane forfeits its bank (no
    /// hoarding while idle). Ties and rotation order are fixed by
    /// tenant index, so the arbiter is deterministic.
    pub fn next<T>(
        &mut self,
        lanes: &mut [VecDeque<T>],
        items: impl Fn(&T) -> u64,
    ) -> Option<(usize, T)> {
        if lanes.iter().all(|l| l.is_empty()) {
            return None;
        }
        loop {
            let t = self.cursor;
            if lanes[t].is_empty() {
                self.deficit[t] = 0;
                self.cursor = (t + 1) % lanes.len();
                continue;
            }
            let head_items = items(lanes[t].front().expect("non-empty lane"));
            if self.deficit[t] >= head_items {
                self.deficit[t] -= head_items;
                let b = lanes[t].pop_front().expect("non-empty lane");
                if lanes[t].is_empty() {
                    self.deficit[t] = 0;
                }
                return Some((t, b));
            }
            self.deficit[t] += self.quantum[t];
            self.cursor = (t + 1) % lanes.len();
        }
    }

    /// Returns a charge taken by [`DrrArbiter::next`] when the picked
    /// item could not actually be served (engine backpressure) and
    /// went back to its lane's head — otherwise a refused lane would
    /// pay twice for one batch.
    pub fn refund(&mut self, t: usize, items: u64) {
        self.deficit[t] += items;
    }

    /// The per-lane banked deficits, in tenant order — snapshotted
    /// into the fleet-pulse DRR round log after every grant.
    pub fn deficits(&self) -> &[u64] {
        &self.deficit
    }
}

/// A formed batch annotated with its lifecycle marks: when it left
/// the coalesce buffer onto its ready lane (`formed`) and when a
/// worker picked it up (`dispatched`, stamped at dispatch time). The
/// real runtimes wrap their pending lanes the same way so span
/// attribution cannot drift between execution layers.
pub(crate) struct TimedBatch {
    pub batch: Batch,
    pub formed: SimTime,
    pub dispatched: SimTime,
}

impl TimedBatch {
    pub fn formed_at(batch: Batch, formed: SimTime) -> Self {
        TimedBatch {
            batch,
            formed,
            dispatched: formed,
        }
    }
}

/// One node's virtual-time execution state around its [`NodeCore`]:
/// per-tenant ready queues arbitrated by deficit round-robin onto the
/// shared worker pool.
struct VirtualNode {
    core: NodeCore,
    /// Per-tenant dispatch queues, in tenant order, each batch carrying
    /// its formation time for span attribution.
    ready: Vec<VecDeque<TimedBatch>>,
    /// Batches queued across all lanes (the backpressure gauge).
    ready_total: usize,
    arbiter: DrrArbiter,
    inflight: BTreeMap<(usize, u64), TimedBatch>,
    busy: usize,
    workers: usize,
    cpu: CpuPlatform,
    /// Under a shard plan, this node's share of the model's gather
    /// traffic: its batches cost
    /// [`ModelCost::shard_gather_request_us`] instead of the whole
    /// request.
    gather_fraction: Option<f64>,
    last_ns: SimTime,
    busy_core_ns: u128,
}

impl VirtualNode {
    fn new(
        costs: &[ModelCost],
        tenants: &[TenantSetup],
        setup: &NodeSetup,
        opts: &ServerOptions,
        gather_fraction: Option<f64>,
    ) -> Self {
        VirtualNode {
            core: NodeCore::new(costs, tenants, setup, opts),
            ready: tenants.iter().map(|_| VecDeque::new()).collect(),
            ready_total: 0,
            arbiter: DrrArbiter::new(tenants),
            inflight: BTreeMap::new(),
            busy: 0,
            workers: setup.workers,
            cpu: setup.cpu,
            gather_fraction,
            last_ns: 0,
            busy_core_ns: 0,
        }
    }

    /// Advances the busy-core integral to `now`.
    fn advance(&mut self, now: SimTime) {
        self.busy_core_ns += now.saturating_sub(self.last_ns) as u128 * self.busy as u128;
        self.last_ns = now;
    }

    /// Enqueues batches formed at `now` on lane `t`, counting each one
    /// that meets a dispatch pool already at its bound (the
    /// backpressure signal — same per-batch semantics as the real
    /// engine's refusals). The bound spans all lanes: the pool is
    /// shared, so one tenant's backlog is every tenant's pressure.
    fn enqueue(&mut self, now: SimTime, t: usize, batches: Vec<Batch>, bound: usize) {
        for b in batches {
            if self.ready_total >= bound {
                self.core.backpressure_stalls += 1;
            }
            self.ready[t].push_back(TimedBatch::formed_at(b, now));
            self.ready_total += 1;
        }
    }

    /// The next `(tenant, batch)` the shared pool should serve, via
    /// the shared [`DrrArbiter`] discipline.
    fn drr_next(&mut self) -> Option<(usize, TimedBatch)> {
        let picked = self.arbiter.next(&mut self.ready, |b| b.batch.items as u64);
        if picked.is_some() {
            self.ready_total -= 1;
        }
        picked
    }

    fn dispatch<M: MetricsSink>(
        &mut self,
        now: SimTime,
        costs: &[ModelCost],
        n: usize,
        events: &mut EventQueue<Ev>,
        pulse: &mut M,
    ) {
        while self.busy < self.workers {
            let Some((t, mut b)) = self.drr_next() else {
                break;
            };
            if M::ENABLED {
                pulse.drr_round(now, n, t, self.arbiter.deficits());
            }
            self.busy += 1;
            b.dispatched = now;
            let service = match self.gather_fraction {
                Some(f) => costs[t].shard_gather_request_us(
                    &self.cpu,
                    b.batch.items as usize,
                    self.busy,
                    f,
                ),
                None => costs[t].cpu_request_us(&self.cpu, b.batch.items as usize, self.busy),
            };
            events.push(
                now + us_to_ns(service),
                Ev::CpuDone {
                    node: n,
                    tenant: t,
                    batch: b.batch.id,
                },
            );
            self.inflight.insert((t, b.batch.id), b);
        }
        self.core.note_queue_depth(self.ready_total);
    }

    /// Lane `t`'s controller retuned: [`NodeCore::rebatch_lane`]
    /// repacks the queued backlog and the open coalesce residual at
    /// the new knob, so old work drains at the new knob's cost and
    /// nothing keeps waiting out a window formed under the old one
    /// (the residual's remaining window collapses to *now*, so the
    /// stale timer — armed for the old, later deadline — has nothing
    /// left to strand). Should a future reform path leave a live
    /// deadline instead, the re-arm below schedules its flush against
    /// the *new* `BatchQueue::deadline()` — the same guard the push
    /// paths use. (Repacked batches are the same queued work, not new
    /// pressure — no backpressure accounting here.)
    fn retune<M: MetricsSink>(
        &mut self,
        t: usize,
        now: SimTime,
        costs: &[ModelCost],
        n: usize,
        events: &mut EventQueue<Ev>,
        pulse: &mut M,
    ) {
        let deadline_before = self.core.batcher(t).deadline();
        let queued: Vec<Batch> = self.ready[t].drain(..).map(|tb| tb.batch).collect();
        self.ready_total -= queued.len();
        let out = self.core.rebatch_lane(t, queued);
        self.ready_total += out.len();
        // Repacked work re-forms *now*: its coalesce credit was already
        // earned under the old knob; residency restarts at the retune.
        self.ready[t].extend(out.into_iter().map(|b| TimedBatch::formed_at(b, now)));
        match self.core.batcher(t).deadline() {
            Some(d) if deadline_before != Some(d) => {
                events.push(d, Ev::Coalesce { node: n, tenant: t })
            }
            _ => {}
        }
        self.dispatch(now, costs, n, events, pulse);
    }
}

/// Serves `queries` across `setups.len()` nodes behind `router` in
/// deterministic virtual time, with one tenant lane per entry of
/// `tenants` on every node. The single-node [`crate::Server`] and the
/// N-node [`crate::Cluster`] are both thin fronts over this loop.
///
/// With `shard` set, every arrival fans out to each shard-holding
/// node (which gathers its local tables' share), and the query
/// completes one exchange + dense-tail delay after its last partial —
/// partial-completion ties break by [`NodeId`] because arrivals push
/// partials in id order and the event queue is FIFO within a
/// timestamp, so runs stay byte-deterministic per seed.
#[allow(clippy::too_many_arguments)] // the one internal loop every serving front shares
pub(crate) fn serve_virtual_multi<S: TraceSink, M: MetricsSink>(
    costs: &[ModelCost],
    tenants: &[TenantSetup],
    setups: &[NodeSetup],
    opts: &ServerOptions,
    mut router: Router,
    shard: Option<&ShardGeometry>,
    queries: &[Query],
    sink: &mut S,
    pulse: &mut M,
) -> ServerReport {
    assert_nonempty_queries(queries);
    let queue_bound = opts.batching.queue_bound;
    let mut stats = StreamStats::new(queries.len(), opts.warmup_frac, tenants.len());
    let mut nodes: Vec<VirtualNode> = setups
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let fraction = shard.map(|sh| sh.gather_fraction(i));
            VirtualNode::new(costs, tenants, s, opts, fraction)
        })
        .collect();
    let mut events: EventQueue<Ev> = EventQueue::new();
    for (idx, q) in queries.iter().enumerate() {
        events.push(secs_to_ns(q.arrival_s), Ev::Arrival { idx });
    }

    // Queues freshly formed batches on node `n`'s lane `t`, scheduling
    // a coalesce flush when the arrival opened a fresh buffer.
    #[allow(clippy::too_many_arguments)] // one call site's context, bundled
    fn queue_on<M: MetricsSink>(
        nodes: &mut [VirtualNode],
        n: usize,
        t: usize,
        batches: Vec<Batch>,
        deadline_before: Option<SimTime>,
        queue_bound: usize,
        now: SimTime,
        costs: &[ModelCost],
        events: &mut EventQueue<Ev>,
        pulse: &mut M,
    ) {
        nodes[n].enqueue(now, t, batches, queue_bound);
        // Schedule a flush only when this arrival opened a fresh
        // coalesce buffer; an unchanged deadline already has its event.
        match nodes[n].core.batcher(t).deadline() {
            Some(d) if deadline_before != Some(d) => {
                events.push(d, Ev::Coalesce { node: n, tenant: t })
            }
            _ => {}
        }
        nodes[n].dispatch(now, costs, n, events, pulse);
    }

    // Fleet-pulse sampling ticks on the virtual clock, draining before
    // each event pops so a sample at T reflects every state change
    // strictly before T and none at or after it — the alignment that
    // makes exported series byte-identical against the real runtimes'
    // due-time clocks. Times rebase to the stream's first arrival.
    let span_epoch = queries
        .iter()
        .map(|q| secs_to_ns(q.arrival_s))
        .min()
        .expect("non-empty stream");
    if M::ENABLED {
        pulse.set_epoch(span_epoch);
    }
    let tick_ns = pulse.interval_ns().max(1);
    let mut next_tick = span_epoch + tick_ns;

    let mut end_ns: SimTime = 0;
    loop {
        if M::ENABLED {
            if let Some(head) = events.peek_time() {
                while next_tick <= head {
                    for (n, node) in nodes.iter().enumerate() {
                        pulse.gauge(&format!("queue_depth_n{n}"), node.ready_total as f64);
                        if let Some(g) = &node.core.gpu {
                            pulse.gauge(
                                &format!("gpu_backlog_ns_n{n}"),
                                g.busy_until().saturating_sub(next_tick) as f64,
                            );
                            pulse.gauge(&format!("gpu_completed_n{n}"), g.completed() as f64);
                        }
                        for t in 0..tenants.len() {
                            let pol = node.core.policy(t);
                            pulse.gauge(&format!("max_batch_n{n}_t{t}"), pol.max_batch as f64);
                            pulse.gauge(
                                &format!("gpu_threshold_n{n}_t{t}"),
                                pol.gpu_threshold.map_or(-1.0, |v| v as f64),
                            );
                            pulse.gauge(
                                &format!("drr_deficit_n{n}_t{t}"),
                                node.arbiter.deficits()[t] as f64,
                            );
                        }
                    }
                    pulse.tick(next_tick);
                    next_tick += tick_ns;
                }
            }
        }
        let Some((now, ev)) = events.pop() else {
            break;
        };
        end_ns = now;
        let touched = match ev {
            Ev::Arrival { idx } => {
                let q = &queries[idx];
                let t = q.tenant.index();
                let NodeId(home) = router.route(q.tenant, q.size);
                match shard {
                    Some(sh) => {
                        // Fan the query to every shard node; the home
                        // (router-chosen) merges after the exchange.
                        // The fabric-only share feeds the exchange
                        // counters; a peer-less plan exchanges nothing
                        // but still pays its dense tail at merge.
                        let exchange_us = sh.exchange_us(home, q.size);
                        let exchange_ns = if exchange_us > 0.0 {
                            us_to_ns(exchange_us)
                        } else {
                            0
                        };
                        let merge_ns =
                            us_to_ns(sh.merge_delay_us(&costs[t], &setups[home].cpu, home, q.size));
                        stats.note_arrival_sharded(
                            now,
                            q,
                            home,
                            sh.shard_nodes().len() as u32,
                            exchange_ns,
                            merge_ns,
                        );
                        // The home node's controller owns the query's
                        // control signal (arrival accounting here,
                        // completion at merge time).
                        nodes[home].core.note_controller_arrival(now, t);
                        for &n in sh.shard_nodes() {
                            nodes[n].advance(now);
                            let deadline_before = nodes[n].core.batcher(t).deadline();
                            let batches = nodes[n].core.on_partial_arrival(now, q);
                            queue_on(
                                &mut nodes,
                                n,
                                t,
                                batches,
                                deadline_before,
                                queue_bound,
                                now,
                                costs,
                                &mut events,
                                pulse,
                            );
                        }
                    }
                    None => {
                        let n = home;
                        nodes[n].advance(now);
                        let measured = stats.note_arrival(now, q, n);
                        let deadline_before = nodes[n].core.batcher(t).deadline();
                        match nodes[n].core.on_arrival(now, q) {
                            Route::Gpu { start, done } => {
                                stats.span_gpu(q.id, start);
                                stats.note_gpu_items(measured, q.size);
                                events.push(done, Ev::GpuDone { node: n, qid: q.id });
                            }
                            Route::Cpu(batches) => {
                                queue_on(
                                    &mut nodes,
                                    n,
                                    t,
                                    batches,
                                    deadline_before,
                                    queue_bound,
                                    now,
                                    costs,
                                    &mut events,
                                    pulse,
                                );
                            }
                        }
                    }
                }
                home
            }
            Ev::Coalesce { node: n, tenant: t } => {
                nodes[n].advance(now);
                let mut out = Vec::new();
                nodes[n].core.batcher_mut(t).flush_due(now, &mut out);
                if !out.is_empty() {
                    nodes[n].enqueue(now, t, out, queue_bound);
                    nodes[n].dispatch(now, costs, n, &mut events, pulse);
                }
                n
            }
            Ev::CpuDone {
                node: n,
                tenant: t,
                batch,
            } => {
                nodes[n].advance(now);
                nodes[n].busy -= 1;
                let tb = nodes[n].inflight.remove(&(t, batch)).expect("known batch");
                for seg in &tb.batch.segments {
                    stats.span_batch(seg.query_id, tb.formed, tb.dispatched);
                    match stats.credit_items(now, seg.query_id, seg.items) {
                        Credit::Pending => {}
                        Credit::Done(f) => {
                            let settled =
                                nodes[f.node]
                                    .core
                                    .on_query_done(now, f.tenant, f.latency_ms);
                            if M::ENABLED {
                                for mut d in nodes[f.node].core.drain_decisions() {
                                    d.node = f.node;
                                    pulse.decision(d);
                                }
                            }
                            stats.record(now, &f, settled, sink, pulse);
                            router.complete(NodeId(f.node));
                        }
                        Credit::AwaitExchange { home, delay } => events.push(
                            now + delay,
                            Ev::ExchangeDone {
                                node: home,
                                qid: seg.query_id,
                            },
                        ),
                    }
                }
                nodes[n].dispatch(now, costs, n, &mut events, pulse);
                n
            }
            Ev::GpuDone { node: n, qid } => {
                nodes[n].advance(now);
                let items = stats.remaining_items(qid);
                match stats.credit_items(now, qid, items) {
                    Credit::Pending => {}
                    Credit::Done(f) => {
                        let settled = nodes[f.node]
                            .core
                            .on_query_done(now, f.tenant, f.latency_ms);
                        if M::ENABLED {
                            for mut d in nodes[f.node].core.drain_decisions() {
                                d.node = f.node;
                                pulse.decision(d);
                            }
                        }
                        stats.record(now, &f, settled, sink, pulse);
                        router.complete(NodeId(f.node));
                    }
                    Credit::AwaitExchange { .. } => {
                        unreachable!("GPU offload never serves sharded queries")
                    }
                }
                n
            }
            Ev::ExchangeDone { node: n, qid } => {
                nodes[n].advance(now);
                let f = stats.finish_exchanged(now, qid);
                debug_assert_eq!(f.node, n, "merge fired at a non-home node");
                let settled = nodes[f.node]
                    .core
                    .on_query_done(now, f.tenant, f.latency_ms);
                if M::ENABLED {
                    for mut d in nodes[f.node].core.drain_decisions() {
                        d.node = f.node;
                        pulse.decision(d);
                    }
                }
                stats.record(now, &f, settled, sink, pulse);
                router.complete(NodeId(f.node));
                n
            }
        };
        for t in 0..tenants.len() {
            if nodes[touched].core.take_policy_dirty(t) {
                nodes[touched].retune(t, now, costs, touched, &mut events, pulse);
            }
        }
    }

    for node in &mut nodes {
        node.advance(end_ns);
    }
    let node_queries = router.dispatched().to_vec();
    let (cores, utilization): (Vec<NodeCore>, Vec<NodeUtilization>) = nodes
        .into_iter()
        .map(|v| {
            (
                v.core,
                NodeUtilization {
                    busy_core_ns: v.busy_core_ns,
                    workers: v.workers,
                },
            )
        })
        .unzip();
    let mut report = assemble_report(
        RunOutcome {
            stats,
            cores,
            setups: setups.to_vec(),
            tenant_setups: tenants.to_vec(),
            utilization,
            end_ns,
            node_queries,
            cpu_utilization_override: None,
        },
        stream_offered_qps(queries),
    );
    if S::ENABLED {
        report.stage_breakdown = sink.breakdown();
    }
    if M::ENABLED {
        report.pulse = pulse.summary();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(id: u64, items: u32) -> Batch {
        Batch {
            id,
            segments: vec![crate::batcher::BatchSegment {
                query_id: id,
                items,
            }],
            items,
            opened_at: 0,
        }
    }

    fn arbiter(weights: &[u32]) -> VirtualNode {
        let opts = ServerOptions::new(1, SchedulerPolicy::cpu_only(64));
        let cost = ModelCost::new(&drs_models::zoo::ncf());
        let costs: Vec<ModelCost> = weights.iter().map(|_| cost.clone()).collect();
        let tenants: Vec<TenantSetup> = weights
            .iter()
            .map(|&w| {
                let mut t = TenantSetup::solo(SchedulerPolicy::cpu_only(64), 100.0);
                t.weight = w;
                t
            })
            .collect();
        let setup = NodeSetup {
            cpu: CpuPlatform::skylake(),
            gpu: None,
            workers: 1,
        };
        VirtualNode::new(&costs, &tenants, &setup, &opts, None)
    }

    #[test]
    fn drr_interleaves_equal_weights() {
        let mut v = arbiter(&[1, 1]);
        for i in 0..4 {
            v.enqueue(0, 0, vec![batch(i, 64)], 1024);
            v.enqueue(0, 1, vec![batch(100 + i, 64)], 1024);
        }
        let mut order = Vec::new();
        while let Some((t, _)) = v.drr_next() {
            order.push(t);
        }
        // Quantum (256) covers four 64-item batches per visit, so each
        // lane drains its bank before the cursor rotates — but neither
        // lane serves more than its share ahead of the other.
        let served_0_first_half: usize = order[..4].iter().filter(|&&t| t == 0).count();
        assert_eq!(order.len(), 8);
        assert!(
            (1..=4).contains(&served_0_first_half),
            "lane 0 within its share early: {order:?}"
        );
        assert_eq!(order.iter().filter(|&&t| t == 0).count(), 4);
    }

    #[test]
    fn drr_weight_skews_service_under_contention() {
        let mut v = arbiter(&[2, 1]);
        for i in 0..12 {
            v.enqueue(0, 0, vec![batch(i, 256)], 1024);
            v.enqueue(0, 1, vec![batch(100 + i, 256)], 1024);
        }
        let mut order = Vec::new();
        for _ in 0..9 {
            order.push(v.drr_next().expect("backlog remains").0);
        }
        let t0 = order.iter().filter(|&&t| t == 0).count();
        assert_eq!(t0, 6, "weight 2 earns two thirds of the pool: {order:?}");
    }

    #[test]
    fn drr_big_batches_bank_across_rounds() {
        // Lane 0 queues 1024-item batches (4 quanta each); lane 1
        // queues 64-item ones. Lane 1 must keep being served while
        // lane 0 banks up — one big batch cannot monopolize the pool.
        let mut v = arbiter(&[1, 1]);
        for i in 0..2 {
            v.enqueue(0, 0, vec![batch(i, 1024)], 1024);
        }
        for i in 0..8 {
            v.enqueue(0, 1, vec![batch(100 + i, 64)], 1024);
        }
        let mut order = Vec::new();
        while let Some((t, b)) = v.drr_next() {
            order.push((t, b.batch.items));
        }
        assert_eq!(order.len(), 10);
        let first_big = order
            .iter()
            .position(|&(t, _)| t == 0)
            .expect("lane 0 served");
        assert!(
            order[..first_big].iter().filter(|&&(t, _)| t == 1).count() >= 4,
            "lane 1 served while lane 0 banks: {order:?}"
        );
    }

    #[test]
    fn drr_idle_lane_forfeits_bank() {
        let mut v = arbiter(&[1, 1]);
        v.enqueue(0, 0, vec![batch(0, 64)], 1024);
        while v.drr_next().is_some() {}
        // Lane 0 drained; its leftover deficit must not persist.
        assert_eq!(v.arbiter.deficit[0], 0, "emptied lane resets its bank");
    }
}
