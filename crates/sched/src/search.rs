//! Maximum sustainable QPS under a tail-latency SLA.
//!
//! The search is generic over the execution layer: any
//! [`ServingStack`] (the simulator, the open-loop server, a
//! router-fronted cluster) can sit under the binary search via
//! [`max_qps_under_sla_stack`]; [`max_qps_under_sla`] is the classic
//! simulator-backed entry point, now a thin wrapper.

use drs_core::{ClusterConfig, ReportView, ServingStack};
use drs_models::ModelConfig;
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_sim::{SchedulerPolicy, SimReport, Simulation};

/// Parameters of the load search shared by every tuner and experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// Queries simulated per load probe.
    pub queries_per_probe: usize,
    /// Relative QPS resolution of the binary search (e.g. 0.05 = 5 %).
    pub tolerance: f64,
    /// Query-size distribution of the workload.
    pub size_dist: SizeDistribution,
    /// Seed for the workload stream (shared across probes so that
    /// configuration comparisons are paired).
    pub seed: u64,
    /// Upper bound on the searched load, QPS.
    pub max_qps_bound: f64,
}

impl SearchOptions {
    /// Experiment-grade settings: 4 000 queries per probe, 4 %
    /// resolution, the production size distribution.
    pub fn standard() -> Self {
        SearchOptions {
            queries_per_probe: 4_000,
            tolerance: 0.04,
            size_dist: SizeDistribution::production(),
            seed: 0xDEEC,
            max_qps_bound: 2.0e5,
        }
    }

    /// CI-grade settings: fast and coarse.
    pub fn quick() -> Self {
        SearchOptions {
            queries_per_probe: 800,
            tolerance: 0.10,
            size_dist: SizeDistribution::production(),
            seed: 0xDEEC,
            max_qps_bound: 2.0e5,
        }
    }

    /// Smoke-test settings: the absolute minimum that still exercises
    /// every code path (floor finding, binary search, hill climbing).
    /// Numbers produced at this profile are **not** meaningful — it
    /// exists so the figure/table binaries can prove they still run
    /// end to end in a few seconds (`--smoke`).
    ///
    /// The probe window cannot shrink much below this: with the
    /// heavy-tailed production size distribution, windows of a few
    /// dozen queries make the measured p95 swing on a single tail
    /// query, collapsing every search to "infeasible" for unlucky
    /// seeds — which would leave the climbers' accept paths untested.
    pub fn smoke() -> Self {
        SearchOptions {
            queries_per_probe: 240,
            tolerance: 0.3,
            size_dist: SizeDistribution::production(),
            seed: 0xDEEC,
            max_qps_bound: 1.0e5,
        }
    }

    /// Returns a copy with a different size distribution (the Figure
    /// 12a lognormal-vs-production comparison).
    pub fn with_size_dist(mut self, d: SizeDistribution) -> Self {
        self.size_dist = d;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a max-QPS search.
#[derive(Debug, Clone)]
pub struct QpsSearchResult {
    /// Highest offered load that met the SLA, in QPS. Zero when even a
    /// trickle of load violates the target (the SLA is unachievable
    /// under this configuration — Figure 14a's "lowest achievable
    /// tail-latency" effect).
    pub max_qps: f64,
    /// Simulation report at that operating point (`None` when
    /// `max_qps` is zero).
    pub at_max: Option<SimReport>,
}

/// One load probe against an arbitrary serving stack: a fresh seeded
/// Poisson stream at `rate_qps`, served in the stack's (virtual) time.
/// The report's offered load is pinned to the probed rate, matching
/// the historical simulator-backed probe exactly.
fn probe_stack<S: ServingStack>(stack: &S, rate_qps: f64, opts: &SearchOptions) -> SimReport {
    let queries: Vec<drs_query::Query> =
        QueryGenerator::new(ArrivalProcess::poisson(rate_qps), opts.size_dist, opts.seed)
            .take(opts.queries_per_probe)
            .collect();
    let mut report = stack.serve_queries(&queries).to_common();
    report.offered_qps = rate_qps;
    report
}

/// Binary-searches the offered Poisson load for the largest QPS whose
/// p95 latency meets `sla_ms` (Section III-B: "we measure throughput as
/// the number of queries per second that can be processed under a p95
/// tail-latency requirement") — the classic simulator-backed entry
/// point, delegating to [`max_qps_under_sla_stack`].
///
/// Deterministic: every probe replays the same seeded workload at a
/// different rate.
pub fn max_qps_under_sla(
    cfg: &ModelConfig,
    cluster: ClusterConfig,
    policy: SchedulerPolicy,
    sla_ms: f64,
    opts: &SearchOptions,
) -> QpsSearchResult {
    max_qps_under_sla_stack(&Simulation::new(cfg, cluster, policy), sla_ms, opts)
}

/// [`max_qps_under_sla`] over any [`ServingStack`]: the same floor /
/// exponential-bracket / binary-search ladder, with each probe served
/// by `stack` instead of a freshly built simulator. This is how the
/// tuner evaluates the open-loop server or a whole cluster without a
/// bespoke search per backend.
pub fn max_qps_under_sla_stack<S: ServingStack>(
    stack: &S,
    sla_ms: f64,
    opts: &SearchOptions,
) -> QpsSearchResult {
    assert!(sla_ms > 0.0, "SLA must be positive");
    let feasible = |rate: f64| -> Option<SimReport> {
        let r = probe_stack(stack, rate, opts);
        // Two conditions: the tail meets the SLA, and the system
        // actually *keeps up* with the offered load. The second guards
        // against the finite-window artifact where a short burst at an
        // absurd rate finishes "within SLA" only because the window
        // ends before the backlog does.
        (r.meets_sla(sla_ms) && r.qps >= 0.85 * rate).then_some(r)
    };

    // Establish a feasible floor.
    let mut lo = 16.0;
    let mut lo_report = loop {
        match feasible(lo) {
            Some(r) => break r,
            None => {
                lo /= 4.0;
                if lo < 0.25 {
                    return QpsSearchResult {
                        max_qps: 0.0,
                        at_max: None,
                    };
                }
            }
        }
    };

    // Grow exponentially to bracket the knee.
    let mut hi = lo * 2.0;
    while hi <= opts.max_qps_bound {
        match feasible(hi) {
            Some(r) => {
                lo = hi;
                lo_report = r;
                hi *= 2.0;
            }
            None => break,
        }
    }
    if hi > opts.max_qps_bound {
        return QpsSearchResult {
            max_qps: lo,
            at_max: Some(lo_report),
        };
    }

    // Binary search between feasible lo and infeasible hi.
    while (hi - lo) / hi > opts.tolerance {
        let mid = (lo + hi) / 2.0;
        match feasible(mid) {
            Some(r) => {
                lo = mid;
                lo_report = r;
            }
            None => hi = mid,
        }
    }
    QpsSearchResult {
        max_qps: lo,
        at_max: Some(lo_report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    #[test]
    fn finds_positive_capacity() {
        let cfg = zoo::dlrm_rmc1();
        let r = max_qps_under_sla(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
            100.0,
            &SearchOptions::quick(),
        );
        assert!(r.max_qps > 50.0, "max qps {}", r.max_qps);
        let at = r.at_max.unwrap();
        assert!(at.latency.p95_ms <= 100.0);
    }

    #[test]
    fn laxer_sla_never_hurts() {
        let cfg = zoo::dlrm_rmc3();
        let opts = SearchOptions::quick();
        let policy = SchedulerPolicy::cpu_only(128);
        let tight = max_qps_under_sla(&cfg, ClusterConfig::single_skylake(), policy, 50.0, &opts);
        let loose = max_qps_under_sla(&cfg, ClusterConfig::single_skylake(), policy, 150.0, &opts);
        assert!(
            loose.max_qps >= tight.max_qps * 0.95,
            "tight {} loose {}",
            tight.max_qps,
            loose.max_qps
        );
    }

    #[test]
    fn impossible_sla_returns_zero() {
        let cfg = zoo::dlrm_rmc2();
        let r = max_qps_under_sla(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(1024),
            0.01, // 10 µs p95: unachievable
            &SearchOptions::quick(),
        );
        assert_eq!(r.max_qps, 0.0);
        assert!(r.at_max.is_none());
    }

    #[test]
    fn deterministic() {
        let cfg = zoo::ncf();
        let opts = SearchOptions::quick();
        let f = || {
            max_qps_under_sla(
                &cfg,
                ClusterConfig::single_skylake(),
                SchedulerPolicy::cpu_only(64),
                5.0,
                &opts,
            )
            .max_qps
        };
        assert_eq!(f(), f());
    }
}
