//! DeepRecSched: hill-climbing scheduler for latency-bounded
//! recommendation inference throughput (Section IV of the paper).
//!
//! Given a model, a cluster, a query workload, and a p95 SLA target,
//! DeepRecSched tunes two knobs:
//!
//! 1. **Per-request batch size** — starting from a unit batch, climb
//!    while the maximum QPS sustainable under the SLA improves
//!    ([`DeepRecSched::tune_cpu`]);
//! 2. **GPU query-size threshold** — starting from a unit threshold
//!    (all queries on the accelerator), climb while QPS improves
//!    ([`DeepRecSched::tune_gpu`]).
//!
//! "Maximum QPS under the SLA" is itself a measurement:
//! [`max_qps_under_sla`] binary-searches the offered Poisson load,
//! running a deterministic simulation window per probe. Both the
//! search and the climbs are generic over the execution layer: any
//! [`drs_core::ServingStack`] — the simulator, the open-loop server,
//! or a router-fronted cluster — can sit under the tuner
//! ([`max_qps_under_sla_stack`], [`DeepRecSched::tune_on`]).
//!
//! The production comparison point is
//! [`drs_sim::SchedulerPolicy::static_baseline`], the fixed batch
//! configuration of Section V.
//!
//! # Examples
//!
//! ```no_run
//! use drs_core::ClusterConfig;
//! use drs_models::zoo;
//! use drs_sched::{DeepRecSched, SearchOptions, SlaTier};
//!
//! let cfg = zoo::dlrm_rmc1();
//! let sched = DeepRecSched::new(SearchOptions::quick());
//! let tuned = sched.tune_cpu(&cfg, ClusterConfig::single_skylake(),
//!                            SlaTier::Medium.sla_ms(&cfg));
//! println!("best batch {} at {:.0} QPS", tuned.policy.max_batch, tuned.qps);
//! ```

#![warn(missing_docs)]

mod climber;
mod search;
mod sla;

pub use climber::{hill_climb_1d, hill_climb_1d_rel, DeepRecSched, TunedConfig};
pub use search::{max_qps_under_sla, max_qps_under_sla_stack, QpsSearchResult, SearchOptions};
pub use sla::SlaTier;
