//! The two-phase hill climber (Section IV-C).

use crate::search::{max_qps_under_sla_stack, QpsSearchResult, SearchOptions};
use drs_core::{
    canonical_batch_ladder, canonical_threshold_ladder, ClusterConfig, LadderClimb, ServingStack,
};
use drs_models::ModelConfig;
use drs_sim::{SchedulerPolicy, SimReport, Simulation};

/// Generic 1-D hill climb over an ascending `ladder`.
///
/// Evaluates rungs in order, keeping the best score seen; stops after
/// `patience + 1` consecutive non-improving rungs (Section IV-C:
/// "increases the batch size to improve system throughput until the
/// achievable QPS degrades"). Ties keep the *earlier* (smaller) rung,
/// so a plateau never inflates the chosen knob.
///
/// Returns `(best rung, best result, full trajectory)` — the
/// trajectories are exactly the Figure 9/10 curves.
pub fn hill_climb_1d<F>(
    ladder: &[u32],
    patience: usize,
    eval: F,
) -> (u32, QpsSearchResult, Vec<(u32, f64)>)
where
    F: FnMut(u32) -> QpsSearchResult,
{
    hill_climb_1d_rel(ladder, patience, 0.0, eval)
}

/// [`hill_climb_1d`] with a relative improvement threshold.
///
/// A rung only displaces the incumbent when its score exceeds the
/// incumbent's by more than `rel_tol` (e.g. `0.10` = 10 %). The
/// production tuner passes the QPS search's own resolution here: the
/// binary search quantizes throughput to steps of `tolerance`, so two
/// rungs within one step of each other are indistinguishable
/// measurements and the smaller knob value — strictly better on
/// latency — must win the tie. Without this the chosen batch size can
/// *grow* as the SLA tightens, purely from measurement quantization.
///
/// The acceptance threshold and the stopping rule are deliberately
/// decoupled: patience counts rungs that fail to beat the best score
/// *observed* (strictly), not the incumbent. A slowly rising surface —
/// several consecutive sub-threshold gains — therefore keeps climbing
/// and is accepted once its *cumulative* gain over the incumbent
/// clears `rel_tol`, instead of being miscounted as degradation and
/// stopping the climb below the optimum.
///
/// The stepping rules themselves live in [`drs_core::LadderClimb`], so
/// the online controller (`drs-server`) replays the exact same
/// decisions one live measurement window at a time; this function is
/// the offline driver that evaluates rungs eagerly.
///
/// # Panics
///
/// Panics if the ladder is empty or not strictly monotonic (plateaus
/// and duplicate rungs are rejected — they would be evaluated twice
/// and can only lose ties), or if `rel_tol` is negative.
pub fn hill_climb_1d_rel<F>(
    ladder: &[u32],
    patience: usize,
    rel_tol: f64,
    mut eval: F,
) -> (u32, QpsSearchResult, Vec<(u32, f64)>)
where
    F: FnMut(u32) -> QpsSearchResult,
{
    let mut climb = LadderClimb::new(ladder.to_vec(), patience, rel_tol);
    let mut best: Option<QpsSearchResult> = None;
    let mut trajectory = Vec::with_capacity(ladder.len());
    while !climb.is_done() {
        let v = climb.current();
        let r = eval(v);
        trajectory.push((v, r.max_qps));
        if climb.observe(r.max_qps).accepted() {
            best = Some(r);
        }
    }
    let (best_val, _) = climb.best();
    (
        best_val,
        best.expect("a non-empty ladder yields at least one accept"),
        trajectory,
    )
}

/// A tuned configuration and the evidence behind it.
#[derive(Debug, Clone)]
pub struct TunedConfig {
    /// The chosen policy.
    pub policy: SchedulerPolicy,
    /// Max QPS under the SLA at that policy.
    pub qps: f64,
    /// Simulation report at the operating point (None if nothing was
    /// feasible).
    pub at_max: Option<SimReport>,
    /// `(knob value, max QPS)` pairs visited by the climb, in order —
    /// the Figure 9 / Figure 10 curves fall out of this.
    pub trajectory: Vec<(u32, f64)>,
}

/// The DeepRecSched tuner.
///
/// "DeepRecSched starts with a unit batch-size … and increases the
/// batch size to improve system throughput until the achievable QPS
/// degrades, while also maintaining the target tail latency.
/// DeepRecSched then tunes the query-size threshold … starting with a
/// unit query size threshold (i.e., all queries are processed on the
/// accelerator), applying hill-climbing to gradually increase the
/// threshold until the achievable QPS degrades." (Section IV-C)
#[derive(Debug, Clone)]
pub struct DeepRecSched {
    opts: SearchOptions,
    /// Candidate batch sizes, ascending.
    batch_ladder: Vec<u32>,
    /// Candidate GPU query-size thresholds, ascending.
    threshold_ladder: Vec<u32>,
    /// Consecutive non-improving rungs tolerated before stopping.
    patience: usize,
}

impl DeepRecSched {
    /// Creates a tuner with the canonical ladders: powers of two from 1
    /// to 1024 for batch size; 0 to the maximum query size for the
    /// offload threshold.
    pub fn new(opts: SearchOptions) -> Self {
        DeepRecSched {
            opts,
            batch_ladder: canonical_batch_ladder(),
            threshold_ladder: canonical_threshold_ladder(),
            patience: 1,
        }
    }

    /// The search options in use.
    pub fn options(&self) -> &SearchOptions {
        &self.opts
    }

    /// Overrides the batch ladder (ablation experiments).
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or not strictly ascending.
    pub fn with_batch_ladder(mut self, ladder: Vec<u32>) -> Self {
        assert!(!ladder.is_empty(), "empty ladder");
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending"
        );
        self.batch_ladder = ladder;
        self
    }

    /// Generic 1-D hill climb over `ladder`, scoring with `eval`.
    /// Returns the best value, its score/result, and the trajectory.
    ///
    /// Improvements are only credited beyond the QPS search's own
    /// resolution (`opts.tolerance`); see [`hill_climb_1d_rel`].
    fn climb<F>(&self, ladder: &[u32], eval: F) -> (u32, QpsSearchResult, Vec<(u32, f64)>)
    where
        F: FnMut(u32) -> QpsSearchResult,
    {
        hill_climb_1d_rel(ladder, self.patience, self.opts.tolerance, eval)
    }

    /// Phase 1: tune the per-request batch size on a CPU-only path.
    pub fn tune_cpu(&self, cfg: &ModelConfig, cluster: ClusterConfig, sla_ms: f64) -> TunedConfig {
        self.tune_cpu_on(|p| Simulation::new(cfg, cluster, p), sla_ms)
    }

    /// Phase 1 over any serving backend: `mk` builds the
    /// [`ServingStack`] (simulator, open-loop server, cluster) that
    /// evaluates each candidate policy. This is how one tuner serves
    /// sim-vs-real-vs-cluster without bespoke search code per backend.
    pub fn tune_cpu_on<S, F>(&self, mk: F, sla_ms: f64) -> TunedConfig
    where
        S: ServingStack,
        F: Fn(SchedulerPolicy) -> S,
    {
        let (batch, result, trajectory) = self.climb(&self.batch_ladder, |b| {
            max_qps_under_sla_stack(&mk(SchedulerPolicy::cpu_only(b)), sla_ms, &self.opts)
        });
        TunedConfig {
            policy: SchedulerPolicy::cpu_only(batch),
            qps: result.max_qps,
            at_max: result.at_max,
            trajectory,
        }
    }

    /// Phase 2: with the batch size fixed, tune the GPU offload
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no GPU.
    pub fn tune_gpu(
        &self,
        cfg: &ModelConfig,
        cluster: ClusterConfig,
        sla_ms: f64,
        batch: u32,
    ) -> TunedConfig {
        assert!(cluster.gpu.is_some(), "tune_gpu needs a GPU in the cluster");
        self.tune_gpu_on(|p| Simulation::new(cfg, cluster, p), sla_ms, batch)
    }

    /// Phase 2 over any serving backend (see
    /// [`DeepRecSched::tune_cpu_on`]); the backend built by `mk` must
    /// accept offloading policies.
    pub fn tune_gpu_on<S, F>(&self, mk: F, sla_ms: f64, batch: u32) -> TunedConfig
    where
        S: ServingStack,
        F: Fn(SchedulerPolicy) -> S,
    {
        let (threshold, result, trajectory) = self.climb(&self.threshold_ladder, |t| {
            max_qps_under_sla_stack(&mk(SchedulerPolicy::with_gpu(batch, t)), sla_ms, &self.opts)
        });
        TunedConfig {
            policy: SchedulerPolicy::with_gpu(batch, threshold),
            qps: result.max_qps,
            at_max: result.at_max,
            trajectory,
        }
    }

    /// Full two-phase tune: batch size first (on the CPU path), then —
    /// when the cluster has a GPU — the offload threshold. Keeps the
    /// CPU-only policy if offloading never beats it.
    pub fn tune(&self, cfg: &ModelConfig, cluster: ClusterConfig, sla_ms: f64) -> TunedConfig {
        self.tune_on(
            |p| Simulation::new(cfg, cluster, p),
            sla_ms,
            cluster.gpu.is_some(),
        )
    }

    /// Full two-phase tune over any serving backend: batch size first,
    /// then — when `gpu_present` — the offload threshold, keeping the
    /// CPU-only policy if offloading never beats it.
    pub fn tune_on<S, F>(&self, mk: F, sla_ms: f64, gpu_present: bool) -> TunedConfig
    where
        S: ServingStack,
        F: Fn(SchedulerPolicy) -> S,
    {
        let cpu = self.tune_cpu_on(&mk, sla_ms);
        if !gpu_present {
            return cpu;
        }
        let gpu = self.tune_gpu_on(&mk, sla_ms, cpu.policy.max_batch);
        if gpu.qps > cpu.qps {
            gpu
        } else {
            cpu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::max_qps_under_sla;
    use drs_models::zoo;

    fn quick() -> DeepRecSched {
        DeepRecSched::new(SearchOptions::quick())
    }

    #[test]
    fn climber_finds_near_optimum_on_trajectory() {
        // The chosen rung must be within tolerance of the best rung it
        // visited (hill climbing with patience can never return a
        // visited-but-worse point).
        let cfg = zoo::dlrm_rmc1();
        let tuned = quick().tune_cpu(&cfg, ClusterConfig::single_skylake(), 100.0);
        let best_seen = tuned
            .trajectory
            .iter()
            .map(|&(_, q)| q)
            .fold(0.0f64, f64::max);
        assert!(
            tuned.qps >= best_seen * 0.999,
            "returned {} but saw {}",
            tuned.qps,
            best_seen
        );
        assert!(tuned.policy.max_batch >= 1);
    }

    #[test]
    fn tuned_beats_static_baseline() {
        // The headline claim, in miniature: tuned batch ≥ baseline QPS.
        let cfg = zoo::dlrm_rmc1();
        let cluster = ClusterConfig::single_skylake();
        let opts = SearchOptions::quick();
        let baseline = max_qps_under_sla(
            &cfg,
            cluster,
            SchedulerPolicy::static_baseline(cluster.cpu.cores),
            100.0,
            &opts,
        );
        let tuned = quick().tune_cpu(&cfg, cluster, 100.0);
        assert!(
            tuned.qps >= baseline.max_qps,
            "tuned {} vs baseline {}",
            tuned.qps,
            baseline.max_qps
        );
    }

    #[test]
    fn gpu_tune_never_worse_than_cpu_tune() {
        let cfg = zoo::wide_and_deep();
        let sched = quick();
        let cpu = sched.tune_cpu(&cfg, ClusterConfig::single_skylake(), 25.0);
        let full = sched.tune(&cfg, ClusterConfig::skylake_with_gpu(), 25.0);
        assert!(
            full.qps >= cpu.qps * 0.98,
            "full {} vs cpu {}",
            full.qps,
            cpu.qps
        );
    }

    #[test]
    fn trajectory_starts_at_unit_values() {
        let cfg = zoo::ncf();
        let tuned = quick().tune_cpu(&cfg, ClusterConfig::single_skylake(), 5.0);
        assert_eq!(tuned.trajectory[0].0, 1, "climb starts at unit batch");
    }

    #[test]
    #[should_panic(expected = "needs a GPU")]
    fn tune_gpu_requires_gpu() {
        let cfg = zoo::ncf();
        let _ = quick().tune_gpu(&cfg, ClusterConfig::single_skylake(), 5.0, 64);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_ladder_rejected() {
        let _ = quick().with_batch_ladder(vec![4, 2]);
    }
}
