//! SLA tiers (Section V: Low / Medium / High latency targets).

use drs_models::ModelConfig;

/// The three tail-latency targets evaluated per model: the published
/// Table-II target (`Medium`) and targets 50 % tighter (`Low`) and 50 %
/// looser (`High`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlaTier {
    /// 0.5 × the published target.
    Low,
    /// The published Table-II target.
    Medium,
    /// 1.5 × the published target.
    High,
}

impl SlaTier {
    /// All tiers in increasing-laxity order.
    pub const ALL: [SlaTier; 3] = [SlaTier::Low, SlaTier::Medium, SlaTier::High];

    /// Multiplier applied to the published target.
    pub fn multiplier(self) -> f64 {
        match self {
            SlaTier::Low => 0.5,
            SlaTier::Medium => 1.0,
            SlaTier::High => 1.5,
        }
    }

    /// The p95 target in milliseconds for a model at this tier.
    pub fn sla_ms(self, cfg: &ModelConfig) -> f64 {
        cfg.sla_ms * self.multiplier()
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SlaTier::Low => "Low",
            SlaTier::Medium => "Medium",
            SlaTier::High => "High",
        }
    }
}

impl std::fmt::Display for SlaTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    #[test]
    fn tiers_scale_published_target() {
        let cfg = zoo::dlrm_rmc2(); // 400 ms published
        assert_eq!(SlaTier::Low.sla_ms(&cfg), 200.0);
        assert_eq!(SlaTier::Medium.sla_ms(&cfg), 400.0);
        assert_eq!(SlaTier::High.sla_ms(&cfg), 600.0);
    }

    #[test]
    fn tiers_ordered() {
        let cfg = zoo::ncf();
        let v: Vec<f64> = SlaTier::ALL.iter().map(|t| t.sla_ms(&cfg)).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn labels_distinct() {
        let l: std::collections::HashSet<_> = SlaTier::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(l.len(), 3);
    }
}
