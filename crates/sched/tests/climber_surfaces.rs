//! Hill-climber behaviour on synthetic response surfaces.
//!
//! The production tuner only ever sees noisy simulator measurements;
//! these tests pin down the optimizer's contract on surfaces where the
//! true optimum is known.

use drs_sched::{hill_climb_1d, QpsSearchResult};
use proptest::prelude::*;

fn ladder() -> Vec<u32> {
    (0..=10).map(|p| 1u32 << p).collect()
}

fn result(q: f64) -> QpsSearchResult {
    QpsSearchResult {
        max_qps: q,
        at_max: None,
    }
}

#[test]
fn finds_peak_of_unimodal_surface() {
    // Peak at 64: f(b) = -(log2 b - 6)^2.
    let f = |b: u32| result(1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 64);
    // With patience 1 the climb stops two rungs past the peak.
    assert_eq!(traj.last().unwrap().0, 256);
}

#[test]
fn plateau_keeps_smallest_rung() {
    // Flat surface: every rung scores the same; the climber must keep
    // the first (strict improvement required), and patience stops it
    // early instead of walking the whole ladder.
    let f = |_b: u32| result(500.0);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1);
    assert_eq!(traj.len(), 3, "1 evaluated + patience+1 non-improving");
}

#[test]
fn monotone_increasing_surface_reaches_the_end() {
    let f = |b: u32| result(b as f64);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1024);
    assert_eq!(traj.len(), 11);
}

#[test]
fn monotone_decreasing_surface_stops_immediately() {
    let f = |b: u32| result(1e6 / b as f64);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1);
    assert_eq!(traj.len(), 3);
}

#[test]
fn patience_skips_single_dips() {
    // A one-rung dip at 8 must not stop the climb to the peak at 64.
    let f = |b: u32| {
        let base = 1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0;
        result(if b == 8 { base - 100.0 } else { base })
    };
    let (best, _, _) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 64);
}

#[test]
fn zero_patience_stops_at_first_degradation() {
    let f = |b: u32| {
        let base = 1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0;
        result(if b == 8 { base - 100.0 } else { base })
    };
    let (best, _, traj) = hill_climb_1d(&ladder(), 0, f);
    // Stops at the dip; best seen so far is 4.
    assert_eq!(best, 4);
    assert_eq!(traj.last().unwrap().0, 8);
}

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any unimodal surface the climber (patience 1) returns the
    /// true ladder optimum.
    #[test]
    fn unimodal_always_solved(peak_idx in 0usize..11, scale in 1.0f64..100.0) {
        let lad = ladder();
        let peak = (lad[peak_idx] as f64).log2();
        let f = |b: u32| result(1e4 - scale * ((b as f64).log2() - peak).powi(2));
        let (best, _, _) = hill_climb_1d(&lad, 1, f);
        prop_assert_eq!(best, lad[peak_idx]);
    }

    /// The returned best is always the max of the visited trajectory.
    #[test]
    fn best_equals_trajectory_max(seed in 0u64..1000) {
        // Arbitrary deterministic surface derived from the seed.
        let f = |b: u32| {
            let x = (b as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(2654435761);
            result((x % 10_000) as f64)
        };
        let (best, res, traj) = hill_climb_1d(&ladder(), 1, f);
        let max = traj.iter().map(|&(_, q)| q).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(res.max_qps, max);
        prop_assert!(traj.iter().any(|&(v, q)| v == best && q == max));
    }
}

mod tolerance {
    //! Contract of `hill_climb_1d_rel`'s relative threshold: ties
    //! within measurement resolution keep the smaller knob, but
    //! cumulative sub-threshold gains must still climb.

    use super::{ladder, result};
    use drs_sched::hill_climb_1d_rel;

    #[test]
    fn sub_resolution_tie_keeps_smaller_rung() {
        // 64 and 128 are within 10% of each other (1280 vs 1408 — one
        // binary-search step); the smaller batch must win the tie.
        let f = |b: u32| {
            result(match b {
                1..=32 => b as f64 * 20.0,
                64 => 1280.0,
                128 => 1408.0,
                _ => 900.0,
            })
        };
        let (best, res, _) = hill_climb_1d_rel(&ladder(), 1, 0.10, f);
        assert_eq!(best, 64, "sub-resolution gain must not move the knob");
        assert_eq!(res.max_qps, 1280.0);
    }

    #[test]
    fn cumulative_sub_threshold_gains_still_climb() {
        // Each rung gains <10%, but the rises compound; the climb must
        // not stall at the first rung nor stop via patience.
        let surface = [100.0, 104.0, 109.0, 118.0, 140.0, 60.0, 50.0];
        let lad: Vec<u32> = (1..=surface.len() as u32).collect();
        let f = |b: u32| result(surface[(b - 1) as usize]);
        let (best, res, _) = hill_climb_1d_rel(&lad, 1, 0.10, f);
        assert_eq!(best, 5, "cumulative gain beyond tolerance must be taken");
        assert_eq!(res.max_qps, 140.0);
    }

    #[test]
    fn plateau_still_stops_via_patience() {
        let f = |_b: u32| result(500.0);
        let (best, _, traj) = hill_climb_1d_rel(&ladder(), 1, 0.10, f);
        assert_eq!(best, 1);
        assert_eq!(traj.len(), 3, "1 evaluated + patience+1 non-improving");
    }

    #[test]
    fn zero_tolerance_matches_plain_climb() {
        let f = |b: u32| result(1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0);
        let strict = hill_climb_1d_rel(&ladder(), 1, 0.0, f);
        let plain = drs_sched::hill_climb_1d(&ladder(), 1, f);
        assert_eq!(strict.0, plain.0);
        assert_eq!(strict.2, plain.2);
    }
}
