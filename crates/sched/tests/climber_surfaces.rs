//! Hill-climber behaviour on synthetic response surfaces.
//!
//! The production tuner only ever sees noisy simulator measurements;
//! these tests pin down the optimizer's contract on surfaces where the
//! true optimum is known.

use drs_sched::{hill_climb_1d, QpsSearchResult};
use proptest::prelude::*;

fn ladder() -> Vec<u32> {
    (0..=10).map(|p| 1u32 << p).collect()
}

fn result(q: f64) -> QpsSearchResult {
    QpsSearchResult {
        max_qps: q,
        at_max: None,
    }
}

#[test]
fn finds_peak_of_unimodal_surface() {
    // Peak at 64: f(b) = -(log2 b - 6)^2.
    let f = |b: u32| result(1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 64);
    // With patience 1 the climb stops two rungs past the peak.
    assert_eq!(traj.last().unwrap().0, 256);
}

#[test]
fn plateau_keeps_smallest_rung() {
    // Flat surface: every rung scores the same; the climber must keep
    // the first (strict improvement required), and patience stops it
    // early instead of walking the whole ladder.
    let f = |_b: u32| result(500.0);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1);
    assert_eq!(traj.len(), 3, "1 evaluated + patience+1 non-improving");
}

#[test]
fn monotone_increasing_surface_reaches_the_end() {
    let f = |b: u32| result(b as f64);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1024);
    assert_eq!(traj.len(), 11);
}

#[test]
fn monotone_decreasing_surface_stops_immediately() {
    let f = |b: u32| result(1e6 / b as f64);
    let (best, _, traj) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 1);
    assert_eq!(traj.len(), 3);
}

#[test]
fn patience_skips_single_dips() {
    // A one-rung dip at 8 must not stop the climb to the peak at 64.
    let f = |b: u32| {
        let base = 1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0;
        result(if b == 8 { base - 100.0 } else { base })
    };
    let (best, _, _) = hill_climb_1d(&ladder(), 1, f);
    assert_eq!(best, 64);
}

#[test]
fn zero_patience_stops_at_first_degradation() {
    let f = |b: u32| {
        let base = 1000.0 - ((b as f64).log2() - 6.0).powi(2) * 10.0;
        result(if b == 8 { base - 100.0 } else { base })
    };
    let (best, _, traj) = hill_climb_1d(&ladder(), 0, f);
    // Stops at the dip; best seen so far is 4.
    assert_eq!(best, 4);
    assert_eq!(traj.last().unwrap().0, 8);
}

proptest! {
    /// On any unimodal surface the climber (patience 1) returns the
    /// true ladder optimum.
    #[test]
    fn unimodal_always_solved(peak_idx in 0usize..11, scale in 1.0f64..100.0) {
        let lad = ladder();
        let peak = (lad[peak_idx] as f64).log2();
        let f = |b: u32| result(1e4 - scale * ((b as f64).log2() - peak).powi(2));
        let (best, _, _) = hill_climb_1d(&lad, 1, f);
        prop_assert_eq!(best, lad[peak_idx]);
    }

    /// The returned best is always the max of the visited trajectory.
    #[test]
    fn best_equals_trajectory_max(seed in 0u64..1000) {
        // Arbitrary deterministic surface derived from the seed.
        let f = |b: u32| {
            let x = (b as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(2654435761);
            result((x % 10_000) as f64)
        };
        let (best, res, traj) = hill_climb_1d(&ladder(), 1, f);
        let max = traj.iter().map(|&(_, q)| q).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(res.max_qps, max);
        prop_assert!(traj.iter().any(|&(v, q)| v == best && q == max));
    }
}
