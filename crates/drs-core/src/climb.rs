//! The hill-climb stepping rule (Section IV-C), factored out of the
//! offline tuner so the online controller can replay the exact same
//! accept/tie/patience decisions one measurement window at a time.

use drs_query::MAX_QUERY_SIZE;

/// The canonical batch-size ladder both tuners climb: powers of two
/// from the unit batch to 1024 (Section IV-C starts "with a unit
/// batch-size").
pub fn canonical_batch_ladder() -> Vec<u32> {
    (0..=10).map(|p| 1u32 << p).collect()
}

/// The canonical GPU query-size-threshold ladder: 0 (offload
/// everything) up to the maximum production query size (offload
/// nothing). Shared by the offline tuner and the online controller so
/// the two cannot silently drift apart.
pub fn canonical_threshold_ladder() -> Vec<u32> {
    vec![
        0,
        25,
        50,
        100,
        150,
        200,
        300,
        400,
        500,
        650,
        800,
        MAX_QUERY_SIZE,
    ]
}

/// Outcome of feeding one observation to [`LadderClimb::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClimbStep {
    /// The observed rung displaced the incumbent best.
    Accepted,
    /// The observation failed to beat the incumbent beyond tolerance.
    Rejected,
}

impl ClimbStep {
    /// Whether this step displaced the incumbent.
    pub fn accepted(self) -> bool {
        self == ClimbStep::Accepted
    }
}

/// Incremental 1-D hill climb over a monotonic ladder of knob values
/// (ascending for the canonical grow-the-knob tune; descending for a
/// local walk back down from an over-climbed operating point).
///
/// The caller drives the loop: read the rung under evaluation with
/// [`current`](LadderClimb::current), measure its score however long
/// that takes (a simulated QPS search offline, a live latency window
/// online), then feed the score to [`observe`](LadderClimb::observe).
/// The stepper applies the tuner's rules:
///
/// * a rung only displaces the incumbent when its score exceeds the
///   incumbent's by more than `rel_tol` (ties keep the earlier —
///   smaller — rung, so measurement quantization never inflates the
///   chosen knob);
/// * the climb stops after `patience + 1` consecutive rungs that fail
///   to beat the best score *observed* (strictly), or when the ladder
///   is exhausted. Acceptance and stopping are deliberately decoupled:
///   a slowly rising surface keeps climbing and is accepted once its
///   cumulative gain clears `rel_tol`.
///
/// Scores are "higher is better" and the first rung always becomes the
/// initial incumbent.
///
/// # Examples
///
/// ```
/// use drs_core::LadderClimb;
///
/// // A surface peaking at rung 4.
/// let scores = [10.0, 30.0, 50.0, 40.0, 20.0];
/// let mut climb = LadderClimb::new(vec![1, 2, 4, 8, 16], 0, 0.0);
/// let mut i = 0;
/// while !climb.is_done() {
///     let _ = climb.observe(scores[i]);
///     i += 1;
/// }
/// assert_eq!(climb.best().0, 4);
/// ```
#[derive(Debug, Clone)]
pub struct LadderClimb {
    ladder: Vec<u32>,
    idx: usize,
    patience: usize,
    rel_tol: f64,
    best_idx: usize,
    best_score: f64,
    peak_seen: f64,
    bad_steps: usize,
    observed: usize,
    done: bool,
}

impl LadderClimb {
    /// Starts a climb over `ladder` with the given stopping patience and
    /// relative acceptance tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, not strictly monotonic (in
    /// either direction), or `rel_tol` is negative.
    pub fn new(ladder: Vec<u32>, patience: usize, rel_tol: f64) -> Self {
        assert!(!ladder.is_empty(), "empty ladder");
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]) || ladder.windows(2).all(|w| w[0] > w[1]),
            "ladder must be strictly ascending or strictly descending"
        );
        assert!(rel_tol >= 0.0, "negative tolerance");
        LadderClimb {
            ladder,
            idx: 0,
            patience,
            rel_tol,
            best_idx: 0,
            best_score: 0.0,
            peak_seen: 0.0,
            bad_steps: 0,
            observed: 0,
            done: false,
        }
    }

    /// The rung currently under evaluation.
    ///
    /// # Panics
    ///
    /// Panics once the climb [`is_done`](LadderClimb::is_done).
    pub fn current(&self) -> u32 {
        assert!(!self.done, "climb finished; use best()");
        self.ladder[self.idx]
    }

    /// Records the measured score of the current rung and advances.
    ///
    /// # Panics
    ///
    /// Panics once the climb [`is_done`](LadderClimb::is_done).
    pub fn observe(&mut self, score: f64) -> ClimbStep {
        assert!(!self.done, "climb finished; use best()");
        let step = if self.observed == 0 {
            self.best_idx = self.idx;
            self.best_score = score;
            self.peak_seen = score;
            ClimbStep::Accepted
        } else {
            if score > self.peak_seen {
                self.peak_seen = score;
                self.bad_steps = 0;
            } else {
                self.bad_steps += 1;
            }
            if score > self.best_score * (1.0 + self.rel_tol) {
                self.best_idx = self.idx;
                self.best_score = score;
                ClimbStep::Accepted
            } else {
                ClimbStep::Rejected
            }
        };
        self.observed += 1;
        self.idx += 1;
        if self.bad_steps > self.patience || self.idx >= self.ladder.len() {
            self.done = true;
        }
        step
    }

    /// Whether the climb has stopped (patience exhausted or ladder
    /// walked to the end).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The best `(rung, score)` seen so far.
    ///
    /// # Panics
    ///
    /// Panics before the first observation.
    pub fn best(&self) -> (u32, f64) {
        assert!(self.observed > 0, "nothing observed yet");
        (self.ladder[self.best_idx], self.best_score)
    }

    /// The ladder being climbed.
    pub fn ladder(&self) -> &[u32] {
        &self.ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(ladder: Vec<u32>, patience: usize, rel_tol: f64, scores: &[f64]) -> LadderClimb {
        let mut c = LadderClimb::new(ladder, patience, rel_tol);
        let mut i = 0;
        while !c.is_done() {
            c.observe(scores[i]);
            i += 1;
        }
        c
    }

    #[test]
    fn stops_after_patience_and_keeps_best() {
        // Peak at rung 2; patience 1 stops after two non-improving rungs.
        let c = run(
            vec![1, 2, 4, 8, 16],
            1,
            0.0,
            &[10.0, 40.0, 30.0, 20.0, 99.0],
        );
        assert_eq!(c.best(), (2, 40.0));
        assert!(c.is_done(), "never reached the 99.0 rung");
    }

    #[test]
    fn tie_keeps_smaller_rung() {
        let c = run(vec![1, 2, 4], 5, 0.10, &[10.0, 10.5, 10.9]);
        // Neither later rung beats 10.0 by more than 10 %.
        assert_eq!(c.best().0, 1);
    }

    #[test]
    fn slow_rise_accumulates_past_tolerance() {
        // Each step gains < 10 % over its predecessor, but cumulative
        // gains over the incumbent clear the threshold; the patience
        // counter must not misread sub-threshold gains as degradation
        // (every rung here improves on the peak, so bad_steps stays 0).
        let c = run(vec![1, 2, 4, 8], 0, 0.10, &[10.0, 10.9, 11.9, 13.2]);
        // 10.9 fails 10.0·1.1; 11.9 clears it (incumbent → 4);
        // 13.2 clears 11.9·1.1 (incumbent → 8).
        assert_eq!(c.best().0, 8);
    }

    #[test]
    fn first_rung_is_incumbent_even_at_zero() {
        let mut c = LadderClimb::new(vec![1, 2], 0, 0.0);
        assert_eq!(c.observe(0.0), ClimbStep::Accepted);
        assert_eq!(c.observe(5.0), ClimbStep::Accepted);
        assert_eq!(c.best(), (2, 5.0));
    }

    #[test]
    fn exhausted_ladder_finishes() {
        let mut c = LadderClimb::new(vec![7], 3, 0.0);
        assert_eq!(c.current(), 7);
        c.observe(1.0);
        assert!(c.is_done());
        assert_eq!(c.best(), (7, 1.0));
    }

    #[test]
    fn descending_ladder_walks_down() {
        // Walking down from an over-climbed knob: 256 is fine, 128 is
        // better, 64 worse again.
        let c = run(vec![256, 128, 64, 32], 0, 0.05, &[10.0, 11.0, 9.0, 8.0]);
        assert_eq!(c.best().0, 128);
    }

    #[test]
    #[should_panic(expected = "strictly ascending or strictly descending")]
    fn bad_ladder_rejected() {
        let _ = LadderClimb::new(vec![4, 2, 3], 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "climb finished")]
    fn observe_after_done_panics() {
        let mut c = LadderClimb::new(vec![1], 0, 0.0);
        c.observe(1.0);
        c.observe(2.0);
    }
}
