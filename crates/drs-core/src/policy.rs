//! The scheduler policy knobs DeepRecSched tunes.

use drs_query::MAX_QUERY_SIZE;

/// A scheduling configuration: the two knobs of Figure 8.
///
/// * `max_batch` — per-request batch size; queries are split into
///   `⌈size / max_batch⌉` parallel CPU requests (request- vs
///   batch-level parallelism).
/// * `gpu_threshold` — queries strictly larger than this are offloaded
///   whole to the accelerator; `None` disables offload (CPU-only).
///
/// # Examples
///
/// ```
/// use drs_core::SchedulerPolicy;
///
/// let p = SchedulerPolicy::with_gpu(128, 300);
/// assert_eq!(p.max_batch, 128);
/// assert!(p.offloads(301));
/// assert!(!p.offloads(300));
/// assert!(!SchedulerPolicy::cpu_only(128).offloads(999));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedulerPolicy {
    /// Maximum items per CPU request.
    pub max_batch: u32,
    /// Offload queries larger than this to the GPU (`None` = never).
    pub gpu_threshold: Option<u32>,
}

impl SchedulerPolicy {
    /// CPU-only policy with the given per-request batch size.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn cpu_only(max_batch: u32) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        SchedulerPolicy {
            max_batch,
            gpu_threshold: None,
        }
    }

    /// Policy that offloads queries larger than `threshold` to the GPU.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn with_gpu(max_batch: u32, threshold: u32) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        SchedulerPolicy {
            max_batch,
            gpu_threshold: Some(threshold),
        }
    }

    /// The production static baseline (Section V): a fixed batch size
    /// chosen by splitting the largest query evenly across all cores —
    /// `⌈1000 / cores⌉`, i.e. 25 on a 40-core Skylake — and no GPU.
    pub fn static_baseline(cores: usize) -> Self {
        assert!(cores > 0, "a machine needs cores");
        SchedulerPolicy::cpu_only(MAX_QUERY_SIZE.div_ceil(cores as u32))
    }

    /// Whether a query of `size` items is offloaded to the GPU.
    pub fn offloads(&self, size: u32) -> bool {
        match self.gpu_threshold {
            Some(t) => size > t,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        assert_eq!(SchedulerPolicy::static_baseline(40).max_batch, 25);
        assert_eq!(SchedulerPolicy::static_baseline(28).max_batch, 36);
        assert_eq!(SchedulerPolicy::static_baseline(40).gpu_threshold, None);
    }

    #[test]
    fn offload_boundary_is_strict() {
        let p = SchedulerPolicy::with_gpu(64, 100);
        assert!(!p.offloads(100));
        assert!(p.offloads(101));
    }

    #[test]
    fn threshold_zero_offloads_everything() {
        // "Starting with a unit query-size threshold (i.e., all queries
        // are processed on the accelerator)" — threshold 0 sends every
        // non-empty query to the GPU.
        let p = SchedulerPolicy::with_gpu(64, 0);
        assert!(p.offloads(1));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        SchedulerPolicy::cpu_only(0);
    }
}
