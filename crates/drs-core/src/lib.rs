//! Shared serving vocabulary for the DeepRecSys reproduction.
//!
//! Three execution layers consume the same handful of types: the
//! discrete-event simulator (`drs-sim`), the offline tuner
//! (`drs-sched`), and the open-loop serving runtime (`drs-server`).
//! This crate is the bottom of that dependency fan — it owns
//!
//! * [`SchedulerPolicy`] — the two knobs every scheduler tunes
//!   (per-request batch size, GPU query-size threshold),
//! * [`ClusterConfig`]/[`ClusterTopology`]/[`NodeId`] — the hardware
//!   description of a fleet, homogeneous or per-node,
//! * [`RoutingPolicy`] — how a front-end router spreads arrivals
//!   across nodes,
//! * [`MultiModelSpec`]/[`TenantSpec`]/[`TenantId`] — the multi-tenant
//!   vocabulary: which co-located services share an engine pool, each
//!   with its own model, SLA tier, and fair-share weight,
//! * [`SimReport`] — the measurement shape every experiment consumes,
//!   with per-tenant slices in [`TenantBreakdown`],
//! * [`ServingStack`]/[`ReportView`] — the unified *serve this stream,
//!   report measurements* entry point all three layers implement,
//! * [`EventQueue`] — the deterministic virtual-time event queue,
//! * [`LadderClimb`] — the incremental hill-climb stepper whose
//!   accept/tie/patience rules are shared by the offline tuner and the
//!   online controller,
//!
//! so that `drs-server` can schedule and report without depending on
//! the whole simulator.

#![warn(missing_docs)]

mod climb;
mod cluster;
mod event;
mod policy;
mod report;
mod stack;
mod tenant;

pub use climb::{canonical_batch_ladder, canonical_threshold_ladder, ClimbStep, LadderClimb};
pub use cluster::{
    ClusterConfig, ClusterTopology, NodeId, NodeSpec, RoutingPolicy, DEFAULT_NODE_MEM_BYTES,
};
pub use event::{secs_to_ns, us_to_ns, EventQueue, SimTime, NS_PER_SEC};
pub use policy::SchedulerPolicy;
pub use report::{met_sla, SimReport, TenantBreakdown, MIN_SLA_SAMPLES};
pub use stack::{
    assert_nonempty_queries, assert_nonempty_trace, stream_offered_qps, ReportView, ServingStack,
    EMPTY_QUERIES_MSG, EMPTY_TRACE_MSG,
};
pub use tenant::{MultiModelSpec, TenantId, TenantSpec};
