//! The unified serving entry point: one trait every execution layer
//! implements.
//!
//! The repo grew three ways to turn a query stream into measurements —
//! the discrete-event simulator (`drs-sim`), the open-loop single-node
//! server (`drs-server`), and the router-fronted cluster — each with
//! its own constructor and its own report shape. [`ServingStack`] is
//! the common face: *serve this prepared arrival stream, return a
//! report*. [`ReportView`] is the common measurement view those
//! reports share (the axes of [`SimReport`]), so figure/table binaries
//! and the tuner can swap backends without touching their measurement
//! code.

use crate::report::{met_sla, SimReport, TenantBreakdown};
use drs_query::{Query, Trace};

/// The measurement axes every serving report exposes — the common
/// denominator of `SimReport` and the server's richer report.
pub trait ReportView {
    /// Offered load (mean arrival rate) in queries per second.
    fn offered_qps(&self) -> f64;
    /// Queries completed inside the measurement window.
    fn completed(&self) -> u64;
    /// Sustained throughput: completed queries / measured span.
    fn qps(&self) -> f64;
    /// End-to-end query latency statistics.
    fn latency(&self) -> &drs_metrics::LatencySummary;
    /// Fraction of candidate items processed on the GPU.
    fn gpu_work_fraction(&self) -> f64;
    /// Mean busy fraction of CPU cores/workers.
    fn cpu_utilization(&self) -> f64;
    /// Mean busy fraction of the GPU(s).
    fn gpu_utilization(&self) -> f64;
    /// Average power draw over the window, watts.
    fn avg_power_w(&self) -> f64;
    /// Power efficiency: sustained QPS per average watt.
    fn qps_per_watt(&self) -> f64;
    /// Duration of the measured window, seconds.
    fn window_s(&self) -> f64;
    /// Per-query latencies in milliseconds (measurement window only).
    fn latencies_ms(&self) -> &[f64];

    /// Per-tenant slices of the window, in tenant order. Empty for
    /// reports that predate multi-tenant serving.
    fn tenant_breakdowns(&self) -> &[TenantBreakdown] {
        &[]
    }

    /// Per-stage latency attribution, when the run recorded spans into
    /// a sink that aggregates them. `None` for untraced runs.
    fn stage_breakdown(&self) -> Option<&drs_telemetry::StageBreakdown> {
        None
    }

    /// Fleet-pulse totals (samples, decisions, DRR grants, peak queue
    /// depth), when the run was metered through a recording pulse.
    /// `None` for unmetered runs.
    fn pulse_summary(&self) -> Option<&drs_telemetry::PulseSummary> {
        None
    }

    /// Whether the window met a p95 SLA target, requiring a minimally
    /// meaningful sample — the contract shared by every report
    /// (see [`crate::met_sla`] and [`crate::MIN_SLA_SAMPLES`]).
    fn sla_met(&self, sla_ms: f64) -> bool {
        met_sla(self.completed(), self.latency().p95_ms, sla_ms)
    }

    /// Projects this report onto the common [`SimReport`] shape
    /// (dropping any backend-specific counters).
    fn to_common(&self) -> SimReport {
        SimReport {
            offered_qps: self.offered_qps(),
            completed: self.completed(),
            qps: self.qps(),
            latency: *self.latency(),
            gpu_work_fraction: self.gpu_work_fraction(),
            cpu_utilization: self.cpu_utilization(),
            gpu_utilization: self.gpu_utilization(),
            avg_power_w: self.avg_power_w(),
            qps_per_watt: self.qps_per_watt(),
            window_s: self.window_s(),
            latencies_ms: self.latencies_ms().to_vec(),
            tenant_breakdowns: self.tenant_breakdowns().to_vec(),
            stage_breakdown: self.stage_breakdown().cloned(),
            pulse: self.pulse_summary().cloned(),
        }
    }
}

impl ReportView for SimReport {
    fn offered_qps(&self) -> f64 {
        self.offered_qps
    }
    fn completed(&self) -> u64 {
        self.completed
    }
    fn qps(&self) -> f64 {
        self.qps
    }
    fn latency(&self) -> &drs_metrics::LatencySummary {
        &self.latency
    }
    fn gpu_work_fraction(&self) -> f64 {
        self.gpu_work_fraction
    }
    fn cpu_utilization(&self) -> f64 {
        self.cpu_utilization
    }
    fn gpu_utilization(&self) -> f64 {
        self.gpu_utilization
    }
    fn avg_power_w(&self) -> f64 {
        self.avg_power_w
    }
    fn qps_per_watt(&self) -> f64 {
        self.qps_per_watt
    }
    fn window_s(&self) -> f64 {
        self.window_s
    }
    fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }
    fn tenant_breakdowns(&self) -> &[TenantBreakdown] {
        &self.tenant_breakdowns
    }
    fn stage_breakdown(&self) -> Option<&drs_telemetry::StageBreakdown> {
        self.stage_breakdown.as_ref()
    }
    fn pulse_summary(&self) -> Option<&drs_telemetry::PulseSummary> {
        self.pulse.as_ref()
    }
    fn to_common(&self) -> SimReport {
        self.clone()
    }
}

/// Mean offered load over a prepared query stream, QPS — the shared
/// definition every [`ServingStack`] reports for pre-collected
/// arrivals.
pub fn stream_offered_qps(queries: &[Query]) -> f64 {
    if queries.len() < 2 {
        return 0.0;
    }
    let span = queries[queries.len() - 1].arrival_s - queries[0].arrival_s;
    if span > 0.0 {
        (queries.len() - 1) as f64 / span
    } else {
        0.0
    }
}

/// The stack-wide message for an empty query stream — every serving
/// entry point panics with exactly this text (see
/// [`assert_nonempty_queries`]).
pub const EMPTY_QUERIES_MSG: &str = "no queries to serve";

/// The stack-wide message for an empty trace — every replay entry
/// point panics with exactly this text (see [`assert_nonempty_trace`]).
pub const EMPTY_TRACE_MSG: &str = "cannot replay an empty trace";

/// The shared guard behind the [`ServingStack`] panic contract: every
/// public serving API (`Simulation`, `Server`, `Cluster`, virtual or
/// real) calls this so an empty stream fails with one consistent
/// message.
///
/// # Panics
///
/// Panics with [`EMPTY_QUERIES_MSG`] if `queries` is empty.
pub fn assert_nonempty_queries(queries: &[Query]) {
    assert!(!queries.is_empty(), "{}", EMPTY_QUERIES_MSG);
}

/// The replay counterpart of [`assert_nonempty_queries`].
///
/// # Panics
///
/// Panics with [`EMPTY_TRACE_MSG`] if `trace` is empty.
pub fn assert_nonempty_trace(trace: &Trace) {
    assert!(!trace.is_empty(), "{}", EMPTY_TRACE_MSG);
}

/// One execution layer that can serve a prepared arrival stream:
/// implemented by the simulator (`drs_sim::Simulation`), the open-loop
/// server (`drs_server::Server`), and the router-fronted cluster
/// (`drs_server::Cluster`).
///
/// `serve_queries` is deterministic for every implementor (virtual
/// time), so A/B comparisons across backends are paired: the same
/// `Vec<Query>` goes in, and only the execution layer changes.
///
/// # Panic contract
///
/// Every serving entry point on every implementor — `serve_queries`,
/// `serve_trace`, and the real-engine variants (`serve_real`,
/// `serve_trace_real`, …) — rejects an empty stream by panicking with
/// [`EMPTY_QUERIES_MSG`] for query slices and [`EMPTY_TRACE_MSG`] for
/// traces, via the shared guards [`assert_nonempty_queries`] /
/// [`assert_nonempty_trace`]. An empty stream is always a caller bug
/// (a degenerate generator or a truncated trace file), never a
/// measurable run.
pub trait ServingStack {
    /// The report this stack produces; always exposes the common
    /// [`ReportView`] axes, and may carry backend-specific counters.
    type Report: ReportView;

    /// Human-readable backend label for tables and legends (e.g.
    /// `"sim"`, `"server"`, `"cluster[po2c x4]"`).
    fn label(&self) -> String;

    /// Serves a prepared arrival stream and reports measurements.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty (see the trait-level panic
    /// contract).
    fn serve_queries(&self, queries: &[Query]) -> Self::Report;

    /// Replays a recorded trace through this stack.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (see the trait-level panic
    /// contract).
    fn serve_trace(&self, trace: &Trace) -> Self::Report {
        assert_nonempty_trace(trace);
        let queries: Vec<Query> = trace.replay().collect();
        self.serve_queries(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_metrics::LatencySummary;

    fn report() -> SimReport {
        SimReport {
            offered_qps: 100.0,
            completed: 50,
            qps: 99.0,
            latency: LatencySummary {
                count: 50,
                mean_ms: 1.0,
                p50_ms: 1.0,
                p75_ms: 1.5,
                p95_ms: 2.0,
                p99_ms: 3.0,
                max_ms: 4.0,
                min_ms: 0.5,
            },
            gpu_work_fraction: 0.25,
            cpu_utilization: 0.5,
            gpu_utilization: 0.1,
            avg_power_w: 120.0,
            qps_per_watt: 0.825,
            window_s: 0.5,
            latencies_ms: vec![1.0, 2.0],
            tenant_breakdowns: Vec::new(),
            stage_breakdown: None,
            pulse: None,
        }
    }

    #[test]
    fn sim_report_views_itself() {
        let r = report();
        assert_eq!(r.qps(), r.qps);
        assert_eq!(r.latency().p95_ms, 2.0);
        assert!(r.sla_met(2.0));
        assert!(!r.sla_met(1.9));
        let c = r.to_common();
        assert_eq!(format!("{c:?}"), format!("{r:?}"));
    }

    #[test]
    fn stream_rate_is_span_based() {
        let qs: Vec<Query> = (0..11)
            .map(|i| Query {
                id: i,
                size: 1,
                arrival_s: i as f64 * 0.1,
                tenant: drs_query::TenantId::SOLO,
            })
            .collect();
        assert!((stream_offered_qps(&qs) - 10.0).abs() < 1e-9);
        assert_eq!(stream_offered_qps(&qs[..1]), 0.0);
    }
}
