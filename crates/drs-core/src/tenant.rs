//! The multi-tenant vocabulary: which services share an engine pool.
//!
//! DeepRecSys's datacenter setting co-locates many recommendation
//! services on shared hardware, and its central result is that
//! batching/offload knobs must be tuned **per model**, not globally
//! (PAPER §III): the zoo's compute/memory profiles diverge too much for
//! one knob to serve a compute-heavy and an embedding-heavy model well
//! at once. [`MultiModelSpec`] is the shared description every
//! execution layer consumes to serve such a co-location: one
//! [`TenantSpec`] per service — its model, its SLA tier, the policy it
//! serves when untuned, and its fair share of the pool.

use crate::policy::SchedulerPolicy;
use drs_models::ModelConfig;
pub use drs_query::TenantId;

/// One co-located recommendation service: its model, SLA tier,
/// scheduling knobs, and fair-share weight on the shared pool.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable service name (defaults to the model's name).
    pub name: String,
    /// The model this tenant serves.
    pub model: ModelConfig,
    /// The tenant's p95 SLA tier, milliseconds (defaults to the
    /// model's Table-II target).
    pub sla_ms: f64,
    /// Scheduling knobs served when no online controller is attached;
    /// with a controller, its `gpu_threshold` seeds the batch phase
    /// exactly as in single-tenant serving.
    pub policy: SchedulerPolicy,
    /// Fair-share weight for the shared-pool arbiter: a tenant with
    /// weight 2 is entitled to twice the pool of a weight-1 tenant
    /// under contention (idle capacity is never reserved).
    pub weight: u32,
}

impl TenantSpec {
    /// Builds a tenant serving `model` under `policy`, with the model's
    /// name, its Table-II SLA, and unit weight.
    pub fn new(model: ModelConfig, policy: SchedulerPolicy) -> Self {
        TenantSpec {
            name: model.name.to_string(),
            sla_ms: model.sla_ms,
            model,
            policy,
            weight: 1,
        }
    }

    /// Overrides the tenant's SLA tier.
    ///
    /// # Panics
    ///
    /// Panics if `sla_ms` is not positive.
    pub fn with_sla_ms(mut self, sla_ms: f64) -> Self {
        assert!(sla_ms > 0.0, "SLA must be positive");
        self.sla_ms = sla_ms;
        self
    }

    /// Overrides the tenant's fair-share weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight > 0, "a tenant needs a positive share");
        self.weight = weight;
        self
    }
}

/// The set of services co-located on one shared engine pool, in
/// [`TenantId`] order: tenant `k` of a serving stack is `tenants()[k]`.
///
/// # Examples
///
/// ```
/// use drs_core::{MultiModelSpec, SchedulerPolicy, TenantSpec};
/// use drs_models::zoo;
///
/// let spec = MultiModelSpec::new(vec![
///     TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(256)),
///     TenantSpec::new(zoo::wide_and_deep(), SchedulerPolicy::cpu_only(16)).with_weight(2),
/// ]);
/// assert_eq!(spec.len(), 2);
/// assert_eq!(spec.tenants()[0].name, "DLRM-RMC1");
/// assert_eq!(spec.tenants()[1].sla_ms, 25.0, "Table-II tier by default");
/// ```
#[derive(Debug, Clone)]
pub struct MultiModelSpec {
    tenants: Vec<TenantSpec>,
}

impl MultiModelSpec {
    /// Builds a co-location spec.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "a co-location needs tenants");
        MultiModelSpec { tenants }
    }

    /// The single-service degenerate case every existing constructor
    /// reduces to.
    pub fn single(model: ModelConfig, policy: SchedulerPolicy) -> Self {
        MultiModelSpec::new(vec![TenantSpec::new(model, policy)])
    }

    /// The tenants, in [`TenantId`] order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Number of co-located services.
    #[allow(clippy::len_without_is_empty)] // a co-location is never empty
    pub fn len(&self) -> usize {
        self.tenants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;

    #[test]
    fn defaults_come_from_the_model() {
        let t = TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(8));
        assert_eq!(t.name, "NCF");
        assert_eq!(t.sla_ms, 5.0);
        assert_eq!(t.weight, 1);
        let t = t.with_sla_ms(10.0).with_weight(3);
        assert_eq!(t.sla_ms, 10.0);
        assert_eq!(t.weight, 3);
    }

    #[test]
    #[should_panic(expected = "a co-location needs tenants")]
    fn empty_spec_rejected() {
        let _ = MultiModelSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive share")]
    fn zero_weight_rejected() {
        let _ = TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(8)).with_weight(0);
    }
}
