//! The cluster vocabulary: node identity, per-node hardware, fleet
//! topology, and the front-end routing policies that dispatch an
//! arrival stream across nodes.
//!
//! The paper evaluates at-scale inference on *clusters* of
//! heterogeneous server-class machines ("recommendation models are run
//! across a variety of server class CPUs such as Intel Broadwell and
//! Skylake", Section IV-A), and production deployments hide such a
//! fleet behind a load balancer. These types are the shared language
//! every execution layer speaks: the discrete-event simulator
//! (`drs-sim`), the open-loop serving runtime (`drs-server`), and the
//! tuner (`drs-sched`) all describe hardware with [`ClusterTopology`]
//! and front-end dispatch with [`RoutingPolicy`].

use drs_platform::{CpuPlatform, GpuPlatform};
use std::fmt;

/// Identity of one node in a cluster. Ordering is the tie-break used
/// by every routing policy, so dispatch stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Default node DRAM capacity: 64 GiB, a representative server-class
/// provisioning. Embedding-table sharding (`drs-shard`) packs a
/// model's tables against this budget per node.
pub const DEFAULT_NODE_MEM_BYTES: u64 = 64 * (1 << 30);

/// The hardware of one node: a CPU, optionally an attached
/// accelerator, and the DRAM capacity available for model state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// CPU model of the node.
    pub cpu: CpuPlatform,
    /// Accelerator attached to the node, if any.
    pub gpu: Option<GpuPlatform>,
    /// DRAM available for model state (embedding tables), bytes.
    /// Capacity, not compute, is what forces models to shard across
    /// nodes (Lui et al.), so placement treats this as a hard budget.
    pub mem_bytes: u64,
}

impl NodeSpec {
    /// A CPU-only node with the default memory capacity.
    pub fn cpu_only(cpu: CpuPlatform) -> Self {
        NodeSpec {
            cpu,
            gpu: None,
            mem_bytes: DEFAULT_NODE_MEM_BYTES,
        }
    }

    /// A node with an attached accelerator and the default memory
    /// capacity.
    pub fn with_gpu(cpu: CpuPlatform, gpu: GpuPlatform) -> Self {
        NodeSpec {
            cpu,
            gpu: Some(gpu),
            mem_bytes: DEFAULT_NODE_MEM_BYTES,
        }
    }

    /// Overrides the node's DRAM capacity for model state.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is zero.
    pub fn with_mem_bytes(mut self, mem_bytes: u64) -> Self {
        assert!(mem_bytes > 0, "a node needs memory");
        self.mem_bytes = mem_bytes;
        self
    }
}

/// The hardware of a whole serving fleet: one [`NodeSpec`] per node,
/// in [`NodeId`] order.
///
/// This is the cluster-first replacement for the homogeneous
/// [`ClusterConfig`]: nodes may differ in CPU generation and in
/// whether they carry an accelerator, which is exactly what the
/// size-aware routing policy exploits.
///
/// # Examples
///
/// ```
/// use drs_core::{ClusterTopology, NodeSpec};
/// use drs_platform::{CpuPlatform, GpuPlatform};
///
/// let topo = ClusterTopology::new(vec![
///     NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
///     NodeSpec::cpu_only(CpuPlatform::broadwell()),
/// ]);
/// assert_eq!(topo.len(), 2);
/// assert!(topo.has_gpu());
/// assert_eq!(topo.gpu_nodes(), vec![true, false]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    nodes: Vec<NodeSpec>,
}

impl ClusterTopology {
    /// Builds a topology from explicit per-node hardware.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs nodes");
        ClusterTopology { nodes }
    }

    /// A homogeneous fleet of `n` identical nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: usize, cpu: CpuPlatform, gpu: Option<GpuPlatform>) -> Self {
        assert!(n > 0, "a cluster needs nodes");
        ClusterTopology {
            nodes: vec![
                NodeSpec {
                    cpu,
                    gpu,
                    mem_bytes: DEFAULT_NODE_MEM_BYTES
                };
                n
            ],
        }
    }

    /// One node.
    pub fn single(cpu: CpuPlatform, gpu: Option<GpuPlatform>) -> Self {
        ClusterTopology {
            nodes: vec![NodeSpec {
                cpu,
                gpu,
                mem_bytes: DEFAULT_NODE_MEM_BYTES,
            }],
        }
    }

    /// The nodes, in [`NodeId`] order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of nodes.
    #[allow(clippy::len_without_is_empty)] // a topology is never empty
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether any node carries an accelerator.
    pub fn has_gpu(&self) -> bool {
        self.nodes.iter().any(|n| n.gpu.is_some())
    }

    /// Per-node accelerator presence, in [`NodeId`] order — the shape
    /// routing policies consume.
    pub fn gpu_nodes(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.gpu.is_some()).collect()
    }
}

impl From<ClusterConfig> for ClusterTopology {
    fn from(cfg: ClusterConfig) -> Self {
        ClusterTopology::uniform(cfg.machines, cfg.cpu, cfg.gpu)
    }
}

/// The hardware under simulation or serving: `machines` identical
/// servers, each with one [`CpuPlatform`] and optionally one attached
/// GPU.
///
/// This is the homogeneous special case kept for the tuner's
/// `Copy`-friendly call sites; heterogeneous fleets and per-node
/// accelerators are described by [`ClusterTopology`]
/// (`ClusterConfig::topology()` converts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of identical machines.
    pub machines: usize,
    /// CPU model of every machine.
    pub cpu: CpuPlatform,
    /// Accelerator attached to every machine (if any).
    pub gpu: Option<GpuPlatform>,
}

impl ClusterConfig {
    /// One Skylake server, no accelerator — the paper's default
    /// single-node experimental platform.
    pub fn single_skylake() -> Self {
        ClusterConfig {
            machines: 1,
            cpu: CpuPlatform::skylake(),
            gpu: None,
        }
    }

    /// One Skylake server with a GTX 1080Ti.
    pub fn skylake_with_gpu() -> Self {
        ClusterConfig {
            machines: 1,
            cpu: CpuPlatform::skylake(),
            gpu: Some(GpuPlatform::gtx_1080ti()),
        }
    }

    /// A homogeneous cluster of `n` machines.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn cluster(n: usize, cpu: CpuPlatform, gpu: Option<GpuPlatform>) -> Self {
        assert!(n > 0, "a cluster needs machines");
        ClusterConfig {
            machines: n,
            cpu,
            gpu,
        }
    }

    /// The per-node view of this homogeneous cluster.
    pub fn topology(&self) -> ClusterTopology {
        ClusterTopology::from(*self)
    }
}

/// How a front-end router spreads the arrival stream across nodes.
///
/// Routing is the knob that dominates cluster tail latency once a
/// service spans nodes (Lui et al., "Understanding Capacity-Driven
/// Scale-Out Neural Recommendation Inference"): an oblivious policy
/// queues work behind slow or busy nodes while capacity idles
/// elsewhere. All policies break ties by the smaller [`NodeId`], so
/// cluster runs stay byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Cycle through nodes in [`NodeId`] order, ignoring load — the
    /// oblivious baseline every load balancer ships with.
    RoundRobin,
    /// Send each query to the node with the fewest outstanding
    /// queries — the simulator's classic least-loaded dispatch, now on
    /// the serving path.
    LeastOutstanding,
    /// Sample `d` distinct nodes uniformly at random and pick the
    /// least-outstanding of them — the "power of two choices" result:
    /// nearly least-outstanding tails at O(d) gauge reads instead of
    /// O(N).
    PowerOfTwoChoices {
        /// Nodes sampled per query (`d = 2` is the classic setting).
        d: usize,
    },
    /// Route queries larger than the serving policy's offload
    /// threshold to GPU-attached nodes (least-outstanding among them),
    /// so the heavy tail lands where the accelerator amortizes it;
    /// small queries balance least-outstanding over the whole fleet.
    /// Falls back to least-outstanding over all nodes when no node
    /// carries a GPU.
    SizeAware,
    /// Sharded-model dispatch: pick the query's *merge home* by
    /// least-outstanding among the nodes that hold embedding shards
    /// (a query must reach every shard holding its tables anyway, so
    /// the only real choice is where partials merge). Without a shard
    /// plan this degrades to plain least-outstanding.
    ShardAware,
}

impl RoutingPolicy {
    /// Short label for tables and figure legends.
    pub fn label(&self) -> String {
        match self {
            RoutingPolicy::RoundRobin => "round-robin".to_string(),
            RoutingPolicy::LeastOutstanding => "least-outstanding".to_string(),
            RoutingPolicy::PowerOfTwoChoices { d } => format!("po{d}c"),
            RoutingPolicy::SizeAware => "size-aware".to_string(),
            RoutingPolicy::ShardAware => "shard-aware".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_from_config_round_trips() {
        let cfg = ClusterConfig::cluster(3, CpuPlatform::skylake(), None);
        let topo = cfg.topology();
        assert_eq!(topo.len(), 3);
        assert!(!topo.has_gpu());
        assert!(topo.nodes().iter().all(|n| n.cpu == CpuPlatform::skylake()));
    }

    #[test]
    fn gpu_presence_is_per_node() {
        let topo = ClusterTopology::new(vec![
            NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
            NodeSpec::cpu_only(CpuPlatform::broadwell()),
        ]);
        assert!(topo.has_gpu());
        assert_eq!(topo.gpu_nodes(), vec![true, false]);
    }

    #[test]
    fn node_ids_order() {
        assert!(NodeId(0) < NodeId(1));
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    fn routing_labels() {
        assert_eq!(RoutingPolicy::PowerOfTwoChoices { d: 2 }.label(), "po2c");
        assert_eq!(RoutingPolicy::RoundRobin.label(), "round-robin");
        assert_eq!(RoutingPolicy::ShardAware.label(), "shard-aware");
    }

    #[test]
    fn mem_capacity_defaults_and_overrides() {
        let spec = NodeSpec::cpu_only(CpuPlatform::skylake());
        assert_eq!(spec.mem_bytes, DEFAULT_NODE_MEM_BYTES);
        let small = spec.with_mem_bytes(8 << 30);
        assert_eq!(small.mem_bytes, 8 << 30);
        assert_eq!(small.cpu, spec.cpu);
    }

    #[test]
    #[should_panic(expected = "a node needs memory")]
    fn zero_mem_rejected() {
        let _ = NodeSpec::cpu_only(CpuPlatform::skylake()).with_mem_bytes(0);
    }

    #[test]
    #[should_panic(expected = "a cluster needs nodes")]
    fn empty_topology_rejected() {
        let _ = ClusterTopology::new(vec![]);
    }
}
