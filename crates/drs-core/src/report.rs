//! Simulation output: the measurements every experiment consumes.

use drs_metrics::LatencySummary;
use drs_query::TenantId;

/// Minimum completions before an SLA verdict is trusted: below this the
/// p95 of a window is sampling noise, so `met_sla` refuses to pass it.
/// One definition shared by every report shape and the tuner, so the
/// floor cannot drift between call sites.
pub const MIN_SLA_SAMPLES: u64 = 20;

/// The one SLA check every layer uses: a window meets a p95 target iff
/// it completed a minimally meaningful sample *and* its p95 is inside
/// the target. `SimReport::meets_sla`, `ServerReport::meets_sla`, the
/// [`crate::ReportView::sla_met`] trait default, and per-tenant
/// breakdowns all delegate here.
pub fn met_sla(completed: u64, p95_ms: f64, sla_ms: f64) -> bool {
    completed >= MIN_SLA_SAMPLES && p95_ms <= sla_ms
}

/// One tenant's slice of a serving report: its completions, sustained
/// throughput, latency distribution, and the SLA tier it is judged
/// against. Single-tenant runs report exactly one breakdown.
#[derive(Debug, Clone)]
pub struct TenantBreakdown {
    /// Which tenant this slice describes.
    pub tenant: TenantId,
    /// The tenant's queries completed inside the measurement window.
    pub completed: u64,
    /// The tenant's sustained throughput over the shared window, QPS.
    pub qps: f64,
    /// The tenant's end-to-end latency statistics.
    pub latency: LatencySummary,
    /// The p95 SLA tier this tenant is served under, milliseconds.
    pub sla_ms: f64,
}

impl TenantBreakdown {
    /// Whether this tenant met its own SLA tier (the shared
    /// [`met_sla`] contract).
    pub fn met_sla(&self) -> bool {
        met_sla(self.completed, self.latency.p95_ms, self.sla_ms)
    }

    /// The tenant's SLA-bounded throughput: its sustained QPS when it
    /// met its tier, zero otherwise — the summand of the co-location
    /// headline metric (aggregate SLA-bounded QPS).
    pub fn sla_bounded_qps(&self) -> f64 {
        if self.met_sla() {
            self.qps
        } else {
            0.0
        }
    }
}

/// Results of one simulation window.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Offered load (mean arrival rate) in queries per second.
    pub offered_qps: f64,
    /// Queries completed inside the measurement window (post-warm-up).
    pub completed: u64,
    /// Sustained throughput: completed queries / measured span.
    pub qps: f64,
    /// End-to-end query latency statistics (queueing + service).
    pub latency: LatencySummary,
    /// Fraction of candidate items processed on the GPU ("percent of
    /// work processed by the GPU", Figure 14a). Zero without a GPU.
    pub gpu_work_fraction: f64,
    /// Mean busy fraction of CPU cores across machines.
    pub cpu_utilization: f64,
    /// Mean busy fraction of the GPU(s).
    pub gpu_utilization: f64,
    /// Average cluster power draw over the window, watts.
    pub avg_power_w: f64,
    /// Power efficiency: sustained QPS per average watt.
    pub qps_per_watt: f64,
    /// Virtual duration of the measured window, seconds.
    pub window_s: f64,
    /// Per-query latencies in milliseconds (measurement window only),
    /// for distribution-level experiments (Figure 7). In record order.
    pub latencies_ms: Vec<f64>,
    /// Per-tenant slices of the window, in [`TenantId`] order
    /// (single-tenant runs carry one entry; legacy constructors may
    /// leave it empty).
    pub tenant_breakdowns: Vec<TenantBreakdown>,
    /// Per-stage latency attribution from the run's trace sink —
    /// `Some` only when the run was traced through a recording sink.
    pub stage_breakdown: Option<drs_telemetry::StageBreakdown>,
    /// Fleet-pulse totals from the run's metrics sink — `Some` only
    /// when the run was metered through a recording pulse.
    pub pulse: Option<drs_telemetry::PulseSummary>,
}

impl SimReport {
    /// Whether the window met a p95 SLA target, requiring a minimally
    /// meaningful sample — delegates to the shared
    /// [`crate::ReportView::sla_met`] contract.
    pub fn meets_sla(&self, sla_ms: f64) -> bool {
        crate::ReportView::sla_met(self, sla_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p95: f64, completed: u64) -> SimReport {
        SimReport {
            offered_qps: 100.0,
            completed,
            qps: 99.0,
            latency: LatencySummary {
                count: completed as usize,
                mean_ms: p95 / 2.0,
                p50_ms: p95 / 2.0,
                p75_ms: p95 * 0.75,
                p95_ms: p95,
                p99_ms: p95 * 1.2,
                max_ms: p95 * 2.0,
                min_ms: 0.1,
            },
            gpu_work_fraction: 0.0,
            cpu_utilization: 0.5,
            gpu_utilization: 0.0,
            avg_power_w: 100.0,
            qps_per_watt: 0.99,
            window_s: 10.0,
            latencies_ms: Vec::new(),
            tenant_breakdowns: Vec::new(),
            stage_breakdown: None,
            pulse: None,
        }
    }

    #[test]
    fn sla_check() {
        assert!(report(80.0, 1000).meets_sla(100.0));
        assert!(!report(120.0, 1000).meets_sla(100.0));
        assert!(
            !report(1.0, 5).meets_sla(100.0),
            "tiny samples are not trustworthy"
        );
    }

    #[test]
    fn shared_floor_is_the_named_constant() {
        assert!(met_sla(MIN_SLA_SAMPLES, 50.0, 100.0));
        assert!(!met_sla(MIN_SLA_SAMPLES - 1, 50.0, 100.0));
        assert!(!met_sla(MIN_SLA_SAMPLES, 150.0, 100.0));
    }

    #[test]
    fn tenant_breakdown_judged_against_its_own_tier() {
        let r = report(80.0, 1000);
        let mut b = TenantBreakdown {
            tenant: TenantId(1),
            completed: 500,
            qps: 50.0,
            latency: r.latency,
            sla_ms: 100.0,
        };
        assert!(b.met_sla());
        assert_eq!(b.sla_bounded_qps(), 50.0);
        b.sla_ms = 60.0;
        assert!(!b.met_sla(), "p95 80 ms misses a 60 ms tier");
        assert_eq!(b.sla_bounded_qps(), 0.0);
        b.sla_ms = 100.0;
        b.completed = 5;
        assert!(!b.met_sla(), "tiny tenant samples are not trustworthy");
    }
}
