//! Simulation output: the measurements every experiment consumes.

use drs_metrics::LatencySummary;

/// Results of one simulation window.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Offered load (mean arrival rate) in queries per second.
    pub offered_qps: f64,
    /// Queries completed inside the measurement window (post-warm-up).
    pub completed: u64,
    /// Sustained throughput: completed queries / measured span.
    pub qps: f64,
    /// End-to-end query latency statistics (queueing + service).
    pub latency: LatencySummary,
    /// Fraction of candidate items processed on the GPU ("percent of
    /// work processed by the GPU", Figure 14a). Zero without a GPU.
    pub gpu_work_fraction: f64,
    /// Mean busy fraction of CPU cores across machines.
    pub cpu_utilization: f64,
    /// Mean busy fraction of the GPU(s).
    pub gpu_utilization: f64,
    /// Average cluster power draw over the window, watts.
    pub avg_power_w: f64,
    /// Power efficiency: sustained QPS per average watt.
    pub qps_per_watt: f64,
    /// Virtual duration of the measured window, seconds.
    pub window_s: f64,
    /// Per-query latencies in milliseconds (measurement window only),
    /// for distribution-level experiments (Figure 7). In record order.
    pub latencies_ms: Vec<f64>,
}

impl SimReport {
    /// Whether the window met a p95 SLA target, requiring a minimally
    /// meaningful sample — delegates to the shared
    /// [`crate::ReportView::sla_met`] contract.
    pub fn meets_sla(&self, sla_ms: f64) -> bool {
        crate::ReportView::sla_met(self, sla_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p95: f64, completed: u64) -> SimReport {
        SimReport {
            offered_qps: 100.0,
            completed,
            qps: 99.0,
            latency: LatencySummary {
                count: completed as usize,
                mean_ms: p95 / 2.0,
                p50_ms: p95 / 2.0,
                p75_ms: p95 * 0.75,
                p95_ms: p95,
                p99_ms: p95 * 1.2,
                max_ms: p95 * 2.0,
                min_ms: 0.1,
            },
            gpu_work_fraction: 0.0,
            cpu_utilization: 0.5,
            gpu_utilization: 0.0,
            avg_power_w: 100.0,
            qps_per_watt: 0.99,
            window_s: 10.0,
            latencies_ms: Vec::new(),
        }
    }

    #[test]
    fn sla_check() {
        assert!(report(80.0, 1000).meets_sla(100.0));
        assert!(!report(120.0, 1000).meets_sla(100.0));
        assert!(
            !report(1.0, 5).meets_sla(100.0),
            "tiny samples are not trustworthy"
        );
    }
}
