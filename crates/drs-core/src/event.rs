//! The virtual-time clock and event queue shared by the simulator and
//! the server's deterministic fast-forward mode.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds since simulation start.
pub type SimTime = u64;

/// Nanoseconds per second, for time conversions.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A time-ordered priority queue of events.
///
/// Ties are broken by insertion sequence so simulations are fully
/// deterministic regardless of payload.
///
/// # Examples
///
/// ```
/// use drs_core::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, "late");
/// q.push(10, "early");
/// q.push(10, "early-second");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-second")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO within equal times.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Converts seconds (f64) to [`SimTime`] nanoseconds, saturating at
/// zero for negative input.
pub fn secs_to_ns(s: f64) -> SimTime {
    if s <= 0.0 {
        0
    } else {
        (s * NS_PER_SEC as f64).round() as SimTime
    }
}

/// Converts microseconds (f64) to nanoseconds, flooring at 1 ns so a
/// service time is never zero.
pub fn us_to_ns(us: f64) -> SimTime {
    ((us * 1e3).round() as SimTime).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(5, 'b');
        q.push(1, 'a');
        q.push(9, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_within_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(us_to_ns(2.5), 2_500);
        assert_eq!(us_to_ns(0.0), 1, "service times never collapse to zero");
    }
}
