//! Property-based tests for the discrete-event simulator.

use drs_core::ClusterConfig;
use drs_models::zoo;
use drs_platform::{CpuPlatform, ModelCost};
use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
use drs_sim::{RunOptions, SchedulerPolicy, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Measured-window accounting is self-consistent: completed count,
    /// raw-latency count, and QPS×window agree.
    #[test]
    fn accounting_consistent(batch in 1u32..1024, rate in 20.0f64..20_000.0, seed in 0u64..500) {
        let sim = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(batch),
        );
        let mut gen = QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            seed,
        );
        let r = sim.run(&mut gen, RunOptions::queries(400));
        prop_assert_eq!(r.completed, 360); // 10% warm-up
        prop_assert_eq!(r.latencies_ms.len(), 360);
        let implied = r.qps * r.window_s;
        prop_assert!((implied - 360.0).abs() < 1.0, "qps x window = {implied}");
    }

    /// No simulated query ever finishes faster than one request's
    /// un-contended service time (physics: queueing adds, never
    /// subtracts).
    #[test]
    fn latency_bounded_below_by_service(batch in 8u32..512, seed in 0u64..200) {
        let cfg = zoo::dlrm_rmc1();
        let cost = ModelCost::new(&cfg);
        let cpu = CpuPlatform::skylake();
        // The fastest possible part: one item, no contention.
        let floor_ms = cost.cpu_request_us(&cpu, 1, 1) / 1e3;
        let sim = Simulation::new(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(batch),
        );
        let mut gen = QueryGenerator::new(
            ArrivalProcess::poisson(100.0),
            SizeDistribution::production(),
            seed,
        );
        let r = sim.run(&mut gen, RunOptions::queries(300));
        prop_assert!(
            r.latency.min_ms >= floor_ms * 0.99,
            "min latency {} below service floor {floor_ms}",
            r.latency.min_ms
        );
    }

    /// Utilization and work shares stay in [0, 1]; power stays between
    /// fleet idle and fleet TDP.
    #[test]
    fn physical_quantities_bounded(machines in 1usize..6, rate in 100.0f64..30_000.0, thr in 0u32..1000) {
        let cluster = ClusterConfig::cluster(machines, CpuPlatform::skylake(), Some(drs_platform::GpuPlatform::gtx_1080ti()));
        let sim = Simulation::new(
            &zoo::dlrm_rmc3(),
            cluster,
            SchedulerPolicy::with_gpu(64, thr),
        );
        let mut gen = QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            7,
        );
        let r = sim.run(&mut gen, RunOptions::queries(500));
        prop_assert!((0.0..=1.0).contains(&r.cpu_utilization));
        prop_assert!((0.0..=1.0).contains(&r.gpu_utilization));
        prop_assert!((0.0..=1.0).contains(&r.gpu_work_fraction));
        let m = machines as f64;
        let idle = m * (CpuPlatform::skylake().idle_w + 55.0);
        let tdp = m * (CpuPlatform::skylake().tdp_w + 250.0);
        prop_assert!(r.avg_power_w >= idle - 1e-6 && r.avg_power_w <= tdp + 1e-6,
                     "power {} outside [{idle}, {tdp}]", r.avg_power_w);
    }

    /// Raising the offload threshold monotonically lowers the GPU work
    /// share (same workload, same seed).
    #[test]
    fn gpu_share_monotone_in_threshold(seed in 0u64..100) {
        let mut prev_share = f64::INFINITY;
        for thr in [0u32, 100, 400, 1000] {
            let sim = Simulation::new(
                &zoo::dlrm_rmc1(),
                ClusterConfig::skylake_with_gpu(),
                SchedulerPolicy::with_gpu(64, thr),
            );
            let mut gen = QueryGenerator::new(
                ArrivalProcess::poisson(200.0),
                SizeDistribution::production(),
                seed,
            );
            let r = sim.run(&mut gen, RunOptions::queries(400));
            prop_assert!(
                r.gpu_work_fraction <= prev_share + 1e-12,
                "share rose at threshold {thr}"
            );
            prev_share = r.gpu_work_fraction;
        }
        prop_assert_eq!(prev_share, 0.0, "threshold 1000 must offload nothing");
    }
}
