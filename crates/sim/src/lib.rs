//! Discrete-event simulator for at-scale recommendation inference.
//!
//! The paper evaluates DeepRecSched on clusters of production machines;
//! this crate is our substitute datacenter (DESIGN.md §2): a
//! deterministic, virtual-time simulation of one or more
//! [`drs_platform::CpuPlatform`] machines (optionally with an attached
//! GPU), fed by a [`drs_query::QueryGenerator`] and scheduled by a
//! [`SchedulerPolicy`].
//!
//! The model follows the serving pipeline of Figure 8:
//!
//! 1. A query arrives (Poisson arrivals, production size distribution)
//!    and is dispatched to the least-loaded machine.
//! 2. If the machine has a GPU and the query exceeds the policy's
//!    *query-size threshold*, the whole query joins the GPU queue
//!    (served FIFO, one query at a time).
//! 3. Otherwise the query is split into `⌈size/batch⌉` balanced CPU
//!    requests that queue for worker cores; service times come from
//!    [`drs_platform::ModelCost`] and depend on the batch size and on
//!    how many cores are concurrently active (cache/bandwidth
//!    contention).
//! 4. The query completes when its last request completes (fork–join);
//!    end-to-end latency includes queueing.
//!
//! Power is integrated event-by-event from per-device utilization, so
//! every run reports QPS, tail latency, GPU work share, and QPS/Watt —
//! the axes of Figures 9–14.
//!
//! # Examples
//!
//! ```
//! use drs_core::ClusterConfig;
//! use drs_models::zoo;
//! use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};
//! use drs_sim::{RunOptions, SchedulerPolicy, Simulation};
//!
//! let sim = Simulation::new(
//!     &zoo::dlrm_rmc1(),
//!     ClusterConfig::single_skylake(),
//!     SchedulerPolicy::cpu_only(64),
//! );
//! let mut gen = QueryGenerator::new(
//!     ArrivalProcess::poisson(200.0),
//!     SizeDistribution::production(),
//!     7,
//! );
//! let report = sim.run(&mut gen, RunOptions::queries(500));
//! assert!(report.completed > 0);
//! assert!(report.latency.p95_ms > 0.0);
//! ```

#![warn(missing_docs)]

mod runner;

// The scheduling/report/event vocabulary lives in `drs-core` so the
// offline tuner and the open-loop server (`drs-server`) share it
// without depending on this simulator; re-exported here so existing
// `drs_sim::` paths keep working. (`ClusterConfig` also lives there —
// its deprecated re-export here was removed once every in-repo caller
// migrated to `drs_core::ClusterConfig`.)
pub use drs_core::{EventQueue, SchedulerPolicy, SimReport, SimTime, NS_PER_SEC};
pub use runner::{RunOptions, Simulation};
