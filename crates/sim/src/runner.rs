//! The simulation loop.

use drs_core::{
    assert_nonempty_queries, assert_nonempty_trace, secs_to_ns, stream_offered_qps, us_to_ns,
    ClusterConfig, ClusterTopology, EventQueue, MultiModelSpec, NodeId, NodeSpec, SchedulerPolicy,
    ServingStack, SimReport, SimTime, TenantBreakdown, TenantId, NS_PER_SEC,
};
use drs_metrics::LatencyRecorder;
use drs_models::ModelConfig;
use drs_platform::{CpuPlatform, GpuPlatform, InterconnectModel, ModelCost};
use drs_query::{split_query, QueryGenerator};
use drs_shard::{ShardGeometry, ShardPlan};
use drs_telemetry::{MetricsSink, NoopMetrics, NoopSink, QuerySpan, Stage, TraceSink, STAGE_COUNT};
use std::collections::{BTreeMap, VecDeque};

/// Length and measurement parameters of one simulation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Queries injected into the simulation.
    pub num_queries: usize,
    /// Leading fraction of queries excluded from statistics (warm-up).
    pub warmup_frac: f64,
}

impl RunOptions {
    /// A standard window of `n` queries with 10 % warm-up.
    pub fn queries(n: usize) -> Self {
        assert!(n > 0, "need at least one query");
        RunOptions {
            num_queries: n,
            warmup_frac: 0.1,
        }
    }
}

/// Pending CPU request: (query id, batch items, owning tenant).
#[derive(Debug, Clone, Copy)]
struct CpuRequest {
    qid: u64,
    batch: u32,
    tenant: usize,
}

#[derive(Debug)]
struct MachineState {
    cores: usize,
    cores_busy: usize,
    cpu_queue: VecDeque<CpuRequest>,
    gpu_busy: bool,
    gpu_queue: VecDeque<(u64, u32, usize)>,
    /// Requests (CPU parts or GPU queries) dispatched here and not yet
    /// finished — the least-loaded dispatch metric.
    outstanding: usize,
    /// Power integration state.
    last_ns: SimTime,
    busy_core_ns: u128,
    gpu_busy_ns: u128,
}

impl MachineState {
    fn new(cores: usize) -> Self {
        MachineState {
            cores,
            cores_busy: 0,
            cpu_queue: VecDeque::new(),
            gpu_busy: false,
            gpu_queue: VecDeque::new(),
            outstanding: 0,
            last_ns: 0,
            busy_core_ns: 0,
            gpu_busy_ns: 0,
        }
    }

    /// Advances the utilization integrals to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_ns) as u128;
        self.busy_core_ns += dt * self.cores_busy as u128;
        if self.gpu_busy {
            self.gpu_busy_ns += dt;
        }
        self.last_ns = now;
    }
}

#[derive(Debug)]
struct QueryState {
    arrival_ns: SimTime,
    parts_left: u32,
    measured: bool,
    /// The tenant the query was issued against (index into the
    /// simulation's tenant table).
    tenant: usize,
    /// Exchange + merge delay once the last shard partial lands
    /// (0 = unsharded: complete with the last part).
    merge_ns: SimTime,
    /// Span timeline marks (see `drs_telemetry`): the machine the
    /// query was dispatched to (sharded: its merge home), whether it
    /// took the GPU path, when service last started (latest part's
    /// dispatch wins), when service finished, and the fabric-only
    /// share of a sharded merge.
    node: usize,
    offloaded: bool,
    dispatched: SimTime,
    service_done: SimTime,
    span_exchange_ns: SimTime,
}

impl QueryState {
    /// The query's per-stage span, built from the recorded marks with
    /// the same clamp chain as the serving runtime's (monotone by
    /// construction, so the stages sum to `end - arrival` exactly).
    /// The simulator has no coalescing layer, so its CPU-path queueing
    /// is all batch residency and coalesce-wait stays zero.
    fn span(&self, query_id: u64, end: SimTime) -> QuerySpan {
        let mut stages = [0u64; STAGE_COUNT];
        let service_end = self.service_done.clamp(self.arrival_ns, end);
        let dispatched = self.dispatched.clamp(self.arrival_ns, service_end);
        if self.offloaded {
            stages[Stage::QueueWait.index()] = dispatched - self.arrival_ns;
        } else {
            stages[Stage::BatchResidency.index()] = dispatched - self.arrival_ns;
        }
        stages[Stage::EngineService.index()] = service_end - dispatched;
        let merge = end - service_end;
        let exchange = self.span_exchange_ns.min(merge);
        stages[Stage::ShardExchange.index()] = exchange;
        stages[Stage::DenseTail.index()] = merge - exchange;
        QuerySpan {
            query_id,
            tenant: self.tenant,
            node: self.node,
            arrival_ns: self.arrival_ns,
            end_ns: end,
            stages,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival {
        qid: u64,
        size: u32,
    },
    CpuDone {
        machine: usize,
        qid: u64,
    },
    GpuDone {
        machine: usize,
        qid: u64,
    },
    /// A sharded query's exchange + merge at its home finished.
    ExchangeDone {
        qid: u64,
    },
}

/// One co-located service inside the simulator: its cost model, its
/// scheduling knobs, and the SLA tier its breakdown is judged against.
#[derive(Debug, Clone)]
struct SimTenant {
    cost: ModelCost,
    policy: SchedulerPolicy,
    sla_ms: f64,
}

/// A configured simulation: per-tenant model costs + cluster +
/// scheduling policies.
///
/// `run` is `&self`, so one `Simulation` can evaluate many workloads
/// (the hill climber re-runs it with different generators).
/// Single-model constructors build the one-tenant special case;
/// [`Simulation::new_multi`] co-locates several models on the same
/// fleet, each serving queries tagged with its [`TenantId`] under its
/// own knobs (the paper's per-model tuning result, §III).
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Co-located services, in [`TenantId`] order.
    tenants: Vec<SimTenant>,
    /// Per-node hardware, in `NodeId` order (see
    /// [`Simulation::with_topology`]).
    nodes: Vec<NodeSpec>,
    /// Table-wise shard geometry, when the model serves sharded.
    shard: Option<ShardGeometry>,
}

impl Simulation {
    /// Builds a simulation for one model on one homogeneous cluster
    /// under one policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy requests GPU offload but the cluster has no
    /// GPU.
    pub fn new(cfg: &ModelConfig, cluster: ClusterConfig, policy: SchedulerPolicy) -> Self {
        Self::with_topology(cfg, cluster.topology(), policy)
    }

    /// Builds a simulation over an arbitrary [`ClusterTopology`]: nodes
    /// may differ in CPU generation and in whether they carry an
    /// accelerator, as found in production datacenters ("recommendation
    /// models are run across a variety of server class CPUs such as
    /// Intel Broadwell and Skylake", Section IV-A). Dispatch remains
    /// least-outstanding, so faster machines naturally absorb more
    /// queries; offloadable queries landing on a GPU-less node are
    /// simply split onto its CPU cores.
    ///
    /// # Panics
    ///
    /// Panics if the policy offloads and no node carries a GPU.
    pub fn with_topology(
        cfg: &ModelConfig,
        topology: ClusterTopology,
        policy: SchedulerPolicy,
    ) -> Self {
        assert!(
            policy.gpu_threshold.is_none() || topology.has_gpu(),
            "policy offloads to a GPU the cluster does not have"
        );
        Simulation {
            tenants: vec![SimTenant {
                cost: ModelCost::new(cfg),
                policy,
                sla_ms: cfg.sla_ms,
            }],
            nodes: topology.nodes().to_vec(),
            shard: None,
        }
    }

    /// Builds a simulation co-locating the spec's models on one fleet:
    /// queries tagged with [`TenantId`] `k` are scheduled under tenant
    /// `k`'s policy and priced by its cost model, mirroring the
    /// multi-tenant serving runtime in virtual time. The report carries
    /// one [`TenantBreakdown`] per tenant.
    ///
    /// # Panics
    ///
    /// Panics if any tenant's policy offloads and no node carries a
    /// GPU.
    pub fn new_multi(spec: &MultiModelSpec, topology: ClusterTopology) -> Self {
        for t in spec.tenants() {
            assert!(
                t.policy.gpu_threshold.is_none() || topology.has_gpu(),
                "tenant {} offloads to a GPU the cluster does not have",
                t.name
            );
        }
        Simulation {
            tenants: spec
                .tenants()
                .iter()
                .map(|t| SimTenant {
                    cost: ModelCost::new(&t.model),
                    policy: t.policy,
                    sla_ms: t.sla_ms,
                })
                .collect(),
            nodes: topology.nodes().to_vec(),
            shard: None,
        }
    }

    /// Serves the model *sharded table-wise* per `plan`: every query
    /// fans a gather partial to each shard-holding machine, and
    /// completes one exchange + dense-tail delay (priced by `net` and
    /// the cost model) after its last partial. The merge home is the
    /// least-outstanding shard machine at arrival, ties toward the
    /// smaller id — runs stay byte-deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different fleet shape,
    /// overfills a node's memory, or the policy offloads (sharded
    /// serving is CPU-path).
    pub fn with_shard_plan(mut self, plan: &ShardPlan, net: InterconnectModel) -> Self {
        assert_eq!(
            plan.node_count(),
            self.nodes.len(),
            "shard plan covers {} nodes, simulation has {}",
            plan.node_count(),
            self.nodes.len()
        );
        assert_eq!(
            self.tenants.len(),
            1,
            "sharded serving is single-tenant; multi-tenant shard plans are a follow-on"
        );
        assert!(
            self.tenants[0].policy.gpu_threshold.is_none(),
            "sharded serving is CPU-path: the policy must not offload"
        );
        for (n, spec) in self.nodes.iter().enumerate() {
            assert!(
                plan.bytes_on(NodeId(n)) <= spec.mem_bytes,
                "plan overfills node {n}: {} > {} bytes",
                plan.bytes_on(NodeId(n)),
                spec.mem_bytes
            );
        }
        self.shard = Some(plan.geometry(net));
        self
    }

    /// Builds a simulation over a *heterogeneous* fleet — one CPU model
    /// per machine, every machine carrying the same optional GPU.
    /// Convenience wrapper over [`Simulation::with_topology`].
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is empty or the policy offloads without a GPU.
    pub fn new_heterogeneous(
        cfg: &ModelConfig,
        cpus: Vec<CpuPlatform>,
        gpu: Option<GpuPlatform>,
        policy: SchedulerPolicy,
    ) -> Self {
        assert!(!cpus.is_empty(), "a fleet needs machines");
        Self::with_topology(
            cfg,
            ClusterTopology::new(
                cpus.into_iter()
                    .map(|cpu| match gpu {
                        Some(g) => NodeSpec::with_gpu(cpu, g),
                        None => NodeSpec::cpu_only(cpu),
                    })
                    .collect(),
            ),
            policy,
        )
    }

    /// The scheduling policy under simulation (the first tenant's, on
    /// a multi-tenant simulation).
    pub fn policy(&self) -> SchedulerPolicy {
        self.tenants[0].policy
    }

    /// The homogeneous view of the cluster under simulation (machine
    /// count plus the *first* node's hardware); heterogeneous fleets
    /// are fully described by [`Simulation::topology`].
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig {
            machines: self.nodes.len(),
            cpu: self.nodes[0].cpu,
            gpu: self.nodes[0].gpu,
        }
    }

    /// The per-node hardware under simulation.
    pub fn topology(&self) -> ClusterTopology {
        ClusterTopology::new(self.nodes.clone())
    }

    /// The per-model cost model in use (the first tenant's, on a
    /// multi-tenant simulation).
    pub fn cost(&self) -> &ModelCost {
        &self.tenants[0].cost
    }

    /// Runs one window of queries drawn from `gen` and reports
    /// measurements. Deterministic given the generator's seed.
    pub fn run(&self, gen: &mut QueryGenerator, opts: RunOptions) -> SimReport {
        self.run_traced(gen, opts, &mut NoopSink)
    }

    /// [`Simulation::run`] with every query's span timeline recorded
    /// into `sink`. With a recording sink the report carries a
    /// [`drs_telemetry::StageBreakdown`]; with [`NoopSink`] this is
    /// exactly `run`.
    pub fn run_traced<S: TraceSink>(
        &self,
        gen: &mut QueryGenerator,
        opts: RunOptions,
        sink: &mut S,
    ) -> SimReport {
        let offered_qps = gen.arrival().mean_rate_qps();
        let queries: Vec<drs_query::Query> = gen.take(opts.num_queries).collect();
        self.run_queries(&queries, offered_qps, opts, sink, &mut NoopMetrics)
    }

    /// [`Simulation::run`] with fleet-pulse metrics sampled on the
    /// virtual clock into `pulse`: per-machine queue depths, busy
    /// cores, outstanding work, and windowed latency digests, ticked
    /// every [`MetricsSink::interval_ns`] of virtual time. With a
    /// recording pulse the report carries a
    /// [`drs_telemetry::PulseSummary`]; with
    /// [`drs_telemetry::NoopMetrics`] this is exactly `run`.
    pub fn run_pulsed<M: MetricsSink>(
        &self,
        gen: &mut QueryGenerator,
        opts: RunOptions,
        pulse: &mut M,
    ) -> SimReport {
        let offered_qps = gen.arrival().mean_rate_qps();
        let queries: Vec<drs_query::Query> = gen.take(opts.num_queries).collect();
        self.run_queries(&queries, offered_qps, opts, &mut NoopSink, pulse)
    }

    /// Replays a recorded [`drs_query::trace::Trace`] through the
    /// simulated cluster — the "query patterns profiled from a
    /// production datacenter" path of Figure 8. `opts.num_queries` is
    /// clamped to the trace length.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn run_trace(&self, trace: &drs_query::trace::Trace, opts: RunOptions) -> SimReport {
        assert_nonempty_trace(trace);
        let n = opts.num_queries.min(trace.len());
        let opts = RunOptions {
            num_queries: n,
            ..opts
        };
        let queries: Vec<drs_query::Query> = trace.replay().take(n).collect();
        self.run_queries(
            &queries,
            trace.mean_rate_qps(),
            opts,
            &mut NoopSink,
            &mut NoopMetrics,
        )
    }

    /// Serves a prepared arrival stream with a standard 10 % warm-up
    /// window — the [`ServingStack`] entry point, also usable directly.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_queries(&self, queries: &[drs_query::Query]) -> SimReport {
        self.serve_queries_traced(queries, &mut NoopSink)
    }

    /// [`Simulation::serve_queries`] with every query's span timeline
    /// recorded into `sink` — the simulator side of the cross-runtime
    /// span validation axis. With a recording sink the report carries
    /// a [`drs_telemetry::StageBreakdown`].
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_queries_traced<S: TraceSink>(
        &self,
        queries: &[drs_query::Query],
        sink: &mut S,
    ) -> SimReport {
        assert_nonempty_queries(queries);
        self.run_queries(
            queries,
            stream_offered_qps(queries),
            RunOptions::queries(queries.len()),
            sink,
            &mut NoopMetrics,
        )
    }

    /// [`Simulation::serve_queries`] with fleet-pulse metrics recorded
    /// into `pulse` (see [`Simulation::run_pulsed`]).
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn serve_queries_pulsed<M: MetricsSink>(
        &self,
        queries: &[drs_query::Query],
        pulse: &mut M,
    ) -> SimReport {
        assert_nonempty_queries(queries);
        self.run_queries(
            queries,
            stream_offered_qps(queries),
            RunOptions::queries(queries.len()),
            &mut NoopSink,
            pulse,
        )
    }

    fn run_queries<S: TraceSink, M: MetricsSink>(
        &self,
        query_list: &[drs_query::Query],
        offered_qps: f64,
        opts: RunOptions,
        sink: &mut S,
        pulse: &mut M,
    ) -> SimReport {
        let warmup_n = (opts.num_queries as f64 * opts.warmup_frac) as u64;
        // Span clocks read "ns since the stream's first arrival" on
        // every runtime (see `drs_telemetry::QuerySpan`).
        let span_epoch = query_list
            .iter()
            .map(|q| secs_to_ns(q.arrival_s))
            .min()
            .unwrap_or(0);

        let mut events: EventQueue<Ev> = EventQueue::new();
        let mut queries: BTreeMap<u64, QueryState> = BTreeMap::new();
        for q in query_list.iter().copied() {
            assert!(
                q.tenant.index() < self.tenants.len(),
                "query {} tagged {} but the simulation serves {} tenant(s)",
                q.id,
                q.tenant,
                self.tenants.len()
            );
            let t = secs_to_ns(q.arrival_s);
            queries.insert(
                q.id,
                QueryState {
                    arrival_ns: t,
                    parts_left: 0,
                    measured: q.id >= warmup_n,
                    tenant: q.tenant.index(),
                    merge_ns: 0,
                    node: 0,
                    offloaded: false,
                    dispatched: t,
                    service_done: t,
                    span_exchange_ns: 0,
                },
            );
            events.push(
                t,
                Ev::Arrival {
                    qid: q.id,
                    size: q.size,
                },
            );
        }

        let mut machines: Vec<MachineState> = self
            .nodes
            .iter()
            .map(|n| MachineState::new(n.cpu.cores))
            .collect();

        let mut latency = LatencyRecorder::with_capacity(opts.num_queries);
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut tenant_latency: Vec<LatencyRecorder> = (0..self.tenants.len())
            .map(|_| LatencyRecorder::new())
            .collect();
        let mut tenant_completed: Vec<u64> = vec![0; self.tenants.len()];
        let mut completed_measured: u64 = 0;
        let mut items_gpu: u64 = 0;
        let mut items_total: u64 = 0;
        let mut window_start: Option<SimTime> = None;
        let mut window_end: SimTime = 0;
        let mut end_ns: SimTime = 0;

        // Fleet-pulse sampling ticks on the virtual clock: before each
        // event pops, every tick due at or before its time fires, so a
        // sample reflects all state changes strictly earlier and none
        // at or after — the alignment that makes exported series
        // byte-identical across runtimes.
        if M::ENABLED {
            pulse.set_epoch(span_epoch);
        }
        let tick_ns = pulse.interval_ns().max(1);
        let mut next_tick = span_epoch + tick_ns;

        loop {
            if M::ENABLED {
                if let Some(head) = events.peek_time() {
                    while next_tick <= head {
                        for (m, mach) in machines.iter().enumerate() {
                            let depth = mach.cpu_queue.len() + mach.gpu_queue.len();
                            pulse.gauge(&format!("queue_depth_n{m}"), depth as f64);
                            pulse.gauge(&format!("cores_busy_n{m}"), mach.cores_busy as f64);
                            pulse.gauge(&format!("outstanding_n{m}"), mach.outstanding as f64);
                            pulse.gauge(
                                &format!("gpu_busy_n{m}"),
                                if mach.gpu_busy { 1.0 } else { 0.0 },
                            );
                        }
                        pulse.tick(next_tick);
                        next_tick += tick_ns;
                    }
                }
            }
            let Some((now, ev)) = events.pop() else {
                break;
            };
            end_ns = now;
            match ev {
                Ev::Arrival { qid, size } => {
                    let state = queries.get_mut(&qid).expect("known query");
                    let tenant = state.tenant;
                    let policy = self.tenants[tenant].policy;
                    if state.measured {
                        items_total += size as u64;
                        if window_start.is_none() {
                            window_start = Some(now);
                        }
                    }
                    if let Some(sh) = &self.shard {
                        // Sharded: the merge home is the
                        // least-outstanding shard machine (ties toward
                        // the smaller id); every shard machine gathers
                        // its partial.
                        let home = sh
                            .shard_nodes()
                            .iter()
                            .copied()
                            .min_by_key(|&i| (machines[i].outstanding, i))
                            .expect("plans hold at least one shard");
                        let merge_us = sh.merge_delay_us(
                            &self.tenants[tenant].cost,
                            &self.nodes[home].cpu,
                            home,
                            size,
                        );
                        state.merge_ns = us_to_ns(merge_us);
                        state.parts_left = 0;
                        state.node = home;
                        state.span_exchange_ns = us_to_ns(sh.exchange_us(home, size));
                        for &m in sh.shard_nodes() {
                            machines[m].advance(now);
                            let parts = split_query(size, policy.max_batch);
                            queries.get_mut(&qid).expect("known query").parts_left +=
                                parts.len() as u32;
                            machines[m].outstanding += parts.len();
                            for batch in parts {
                                machines[m]
                                    .cpu_queue
                                    .push_back(CpuRequest { qid, batch, tenant });
                            }
                            self.try_dispatch_cpu(m, now, &mut machines, &mut queries, &mut events);
                        }
                        continue;
                    }
                    // Least-loaded dispatch (stable tie-break by index).
                    let m = (0..machines.len())
                        .min_by_key(|&i| machines[i].outstanding)
                        .expect("non-empty cluster");
                    machines[m].advance(now);
                    let state = queries.get_mut(&qid).expect("known query");
                    state.node = m;
                    if policy.offloads(size) && self.nodes[m].gpu.is_some() {
                        state.parts_left = 1;
                        state.offloaded = true;
                        if state.measured {
                            items_gpu += size as u64;
                        }
                        machines[m].outstanding += 1;
                        machines[m].gpu_queue.push_back((qid, size, tenant));
                        self.try_start_gpu(m, now, &mut machines, &mut queries, &mut events);
                    } else {
                        let parts = split_query(size, policy.max_batch);
                        state.parts_left = parts.len() as u32;
                        machines[m].outstanding += parts.len();
                        for batch in parts {
                            machines[m]
                                .cpu_queue
                                .push_back(CpuRequest { qid, batch, tenant });
                        }
                        self.try_dispatch_cpu(m, now, &mut machines, &mut queries, &mut events);
                    }
                }
                Ev::CpuDone { machine, qid } => {
                    machines[machine].advance(now);
                    machines[machine].cores_busy -= 1;
                    machines[machine].outstanding -= 1;
                    Self::finish_part(
                        qid,
                        now,
                        &mut queries,
                        &mut events,
                        &mut latency,
                        &mut latencies_ms,
                        &mut tenant_latency,
                        &mut tenant_completed,
                        &mut completed_measured,
                        &mut window_end,
                        span_epoch,
                        sink,
                        pulse,
                    );
                    self.try_dispatch_cpu(machine, now, &mut machines, &mut queries, &mut events);
                }
                Ev::GpuDone { machine, qid } => {
                    machines[machine].advance(now);
                    machines[machine].gpu_busy = false;
                    machines[machine].outstanding -= 1;
                    Self::finish_part(
                        qid,
                        now,
                        &mut queries,
                        &mut events,
                        &mut latency,
                        &mut latencies_ms,
                        &mut tenant_latency,
                        &mut tenant_completed,
                        &mut completed_measured,
                        &mut window_end,
                        span_epoch,
                        sink,
                        pulse,
                    );
                    self.try_start_gpu(machine, now, &mut machines, &mut queries, &mut events);
                }
                Ev::ExchangeDone { qid } => {
                    Self::record_completion(
                        qid,
                        now,
                        &mut queries,
                        &mut latency,
                        &mut latencies_ms,
                        &mut tenant_latency,
                        &mut tenant_completed,
                        &mut completed_measured,
                        &mut window_end,
                        span_epoch,
                        sink,
                        pulse,
                    );
                }
            }
        }

        // Finalize utilization integrals.
        for m in &mut machines {
            m.advance(end_ns);
        }

        let span_s = (end_ns as f64 / NS_PER_SEC as f64).max(1e-9);
        let cpu_util = machines
            .iter()
            .map(|m| m.busy_core_ns as f64 / (m.cores as f64 * end_ns.max(1) as f64))
            .sum::<f64>()
            / machines.len() as f64;
        let gpu_node_count = self.nodes.iter().filter(|n| n.gpu.is_some()).count();
        let gpu_util = if gpu_node_count > 0 {
            machines
                .iter()
                .zip(&self.nodes)
                .filter(|(_, n)| n.gpu.is_some())
                .map(|(m, _)| m.gpu_busy_ns as f64 / end_ns.max(1) as f64)
                .sum::<f64>()
                / gpu_node_count as f64
        } else {
            0.0
        };
        // Per-machine power with per-machine utilization (machines in a
        // heterogeneous fleet differ in both TDP and observed load).
        let avg_power_w: f64 = machines
            .iter()
            .zip(&self.nodes)
            .map(|(m, node)| {
                let util = m.busy_core_ns as f64 / (m.cores as f64 * end_ns.max(1) as f64);
                let mut w = node.cpu.power_w(util);
                if let Some(gpu) = &node.gpu {
                    w += gpu.power_w(m.gpu_busy_ns as f64 / end_ns.max(1) as f64);
                }
                w
            })
            .sum();

        let window_s = match window_start {
            Some(start) if window_end > start => (window_end - start) as f64 / NS_PER_SEC as f64,
            _ => span_s,
        };
        let qps = completed_measured as f64 / window_s.max(1e-9);
        let tenant_breakdowns = self
            .tenants
            .iter()
            .enumerate()
            .map(|(k, t)| TenantBreakdown {
                tenant: TenantId(k as u32),
                completed: tenant_completed[k],
                qps: tenant_completed[k] as f64 / window_s.max(1e-9),
                latency: tenant_latency[k].summary(),
                sla_ms: t.sla_ms,
            })
            .collect();
        SimReport {
            offered_qps,
            completed: completed_measured,
            qps,
            latency: latency.summary(),
            gpu_work_fraction: if items_total > 0 {
                items_gpu as f64 / items_total as f64
            } else {
                0.0
            },
            cpu_utilization: cpu_util,
            gpu_utilization: gpu_util,
            avg_power_w,
            qps_per_watt: if avg_power_w > 0.0 {
                qps / avg_power_w
            } else {
                0.0
            },
            window_s,
            latencies_ms,
            tenant_breakdowns,
            stage_breakdown: if S::ENABLED { sink.breakdown() } else { None },
            pulse: if M::ENABLED { pulse.summary() } else { None },
        }
    }

    fn try_dispatch_cpu(
        &self,
        m: usize,
        now: SimTime,
        machines: &mut [MachineState],
        queries: &mut BTreeMap<u64, QueryState>,
        events: &mut EventQueue<Ev>,
    ) {
        let mach = &mut machines[m];
        while mach.cores_busy < mach.cores {
            let Some(req) = mach.cpu_queue.pop_front() else {
                break;
            };
            mach.cores_busy += 1;
            // Service (re)starts now for this query; the latest part's
            // dispatch wins, so queueing behind earlier parts counts
            // as residency, not service.
            queries.get_mut(&req.qid).expect("known query").dispatched = now;
            let cost = &self.tenants[req.tenant].cost;
            let service_us = match &self.shard {
                Some(sh) => cost.shard_gather_request_us(
                    &self.nodes[m].cpu,
                    req.batch as usize,
                    mach.cores_busy,
                    sh.gather_fraction(m),
                ),
                None => {
                    cost.cpu_request_us(&self.nodes[m].cpu, req.batch as usize, mach.cores_busy)
                }
            };
            events.push(
                now + us_to_ns(service_us),
                Ev::CpuDone {
                    machine: m,
                    qid: req.qid,
                },
            );
        }
    }

    fn try_start_gpu(
        &self,
        m: usize,
        now: SimTime,
        machines: &mut [MachineState],
        queries: &mut BTreeMap<u64, QueryState>,
        events: &mut EventQueue<Ev>,
    ) {
        let mach = &mut machines[m];
        if mach.gpu_busy {
            return;
        }
        let Some((qid, size, tenant)) = mach.gpu_queue.pop_front() else {
            return;
        };
        mach.gpu_busy = true;
        // The FIFO wait ends here: everything before this is queue-wait.
        queries.get_mut(&qid).expect("known query").dispatched = now;
        let gpu = self.nodes[m].gpu.as_ref().expect("GPU present");
        let service_us =
            self.tenants[tenant]
                .cost
                .gpu_query_us(&self.nodes[m].cpu, gpu, size as usize);
        events.push(now + us_to_ns(service_us), Ev::GpuDone { machine: m, qid });
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_part<S: TraceSink, M: MetricsSink>(
        qid: u64,
        now: SimTime,
        queries: &mut BTreeMap<u64, QueryState>,
        events: &mut EventQueue<Ev>,
        latency: &mut LatencyRecorder,
        latencies_ms: &mut Vec<f64>,
        tenant_latency: &mut [LatencyRecorder],
        tenant_completed: &mut [u64],
        completed_measured: &mut u64,
        window_end: &mut SimTime,
        span_epoch: SimTime,
        sink: &mut S,
        pulse: &mut M,
    ) {
        let state = queries.get_mut(&qid).expect("known query");
        state.parts_left -= 1;
        if state.parts_left > 0 {
            return;
        }
        state.service_done = now;
        if state.merge_ns > 0 {
            // Sharded: the last partial landed; the query completes
            // after its exchange + merge delay.
            let delay = state.merge_ns;
            state.merge_ns = 0;
            events.push(now + delay, Ev::ExchangeDone { qid });
            return;
        }
        Self::record_completion(
            qid,
            now,
            queries,
            latency,
            latencies_ms,
            tenant_latency,
            tenant_completed,
            completed_measured,
            window_end,
            span_epoch,
            sink,
            pulse,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn record_completion<S: TraceSink, M: MetricsSink>(
        qid: u64,
        now: SimTime,
        queries: &mut BTreeMap<u64, QueryState>,
        latency: &mut LatencyRecorder,
        latencies_ms: &mut Vec<f64>,
        tenant_latency: &mut [LatencyRecorder],
        tenant_completed: &mut [u64],
        completed_measured: &mut u64,
        window_end: &mut SimTime,
        span_epoch: SimTime,
        sink: &mut S,
        pulse: &mut M,
    ) {
        let state = queries.get_mut(&qid).expect("known query");
        debug_assert_eq!(state.parts_left, 0, "completion with parts in flight");
        if state.measured {
            let ms = (now - state.arrival_ns) as f64 / 1e6;
            latency.record_ms(ms);
            latencies_ms.push(ms);
            tenant_latency[state.tenant].record_ms(ms);
            tenant_completed[state.tenant] += 1;
            *completed_measured += 1;
            *window_end = (*window_end).max(now);
            if M::ENABLED {
                pulse.observe("latency_ms", ms);
                pulse.inc("completed_total", 1);
            }
            if S::ENABLED {
                // Rebase to the stream's first arrival so span clocks
                // read "ns since the first arrival" on every runtime.
                let mut span = state.span(qid, now);
                span.arrival_ns -= span_epoch;
                span.end_ns -= span_epoch;
                debug_assert_eq!(span.latency_ms().to_bits(), ms.to_bits());
                debug_assert_eq!(span.validate(), Ok(()));
                sink.record(&span);
            }
        }
    }
}

impl ServingStack for Simulation {
    type Report = SimReport;

    fn label(&self) -> String {
        match &self.shard {
            Some(sh) => format!(
                "sim x{} sharded x{}",
                self.nodes.len(),
                sh.shard_nodes().len()
            ),
            None if self.tenants.len() > 1 => {
                format!("sim x{} multi x{}", self.nodes.len(), self.tenants.len())
            }
            None => format!("sim x{}", self.nodes.len()),
        }
    }

    fn serve_queries(&self, queries: &[drs_query::Query]) -> SimReport {
        Simulation::serve_queries(self, queries)
    }

    fn serve_trace(&self, trace: &drs_query::trace::Trace) -> SimReport {
        self.run_trace(trace, RunOptions::queries(trace.len().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::zoo;
    use drs_query::{ArrivalProcess, SizeDistribution};

    fn gen(rate: f64, seed: u64) -> QueryGenerator {
        QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            seed,
        )
    }

    #[test]
    fn completes_every_measured_query() {
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let opts = RunOptions::queries(1000);
        let report = sim.run(&mut gen(100.0, 1), opts);
        assert_eq!(report.completed, 900, "10% warm-up excluded");
        assert_eq!(report.latencies_ms.len(), 900);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let sim = Simulation::new(
                &zoo::ncf(),
                ClusterConfig::single_skylake(),
                SchedulerPolicy::cpu_only(128),
            );
            sim.run(&mut gen(500.0, 42), RunOptions::queries(800))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.latency.p95_ms, b.latency.p95_ms);
        assert_eq!(a.qps, b.qps);
        assert_eq!(a.latencies_ms, b.latencies_ms);
    }

    #[test]
    fn low_load_latency_is_service_time() {
        // At very low load, no queueing: mean latency ≈ a one-part
        // service time band.
        let sim = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(1024),
        );
        let report = sim.run(&mut gen(5.0, 3), RunOptions::queries(300));
        // NCF service for a ≤1000-item request is well under 10 ms.
        assert!(
            report.latency.p95_ms < 10.0,
            "p95 {}",
            report.latency.p95_ms
        );
        assert!(report.cpu_utilization < 0.1);
    }

    #[test]
    fn overload_explodes_latency_but_not_qps() {
        let sim = Simulation::new(
            &zoo::dlrm_rmc2(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let light = sim.run(&mut gen(50.0, 5), RunOptions::queries(1500));
        let heavy = sim.run(&mut gen(5000.0, 5), RunOptions::queries(1500));
        assert!(heavy.latency.p95_ms > 10.0 * light.latency.p95_ms);
        // Sustained QPS saturates at service capacity, far below the
        // offered 5000.
        assert!(heavy.qps < 4000.0);
    }

    #[test]
    fn throughput_matches_offered_when_underloaded() {
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(128),
        );
        let report = sim.run(&mut gen(200.0, 7), RunOptions::queries(3000));
        assert!(
            (report.qps - 200.0).abs() / 200.0 < 0.1,
            "qps {} vs offered 200",
            report.qps
        );
    }

    #[test]
    fn more_machines_sustain_more_load() {
        let policy = SchedulerPolicy::cpu_only(64);
        let one = Simulation::new(&zoo::dlrm_rmc1(), ClusterConfig::single_skylake(), policy);
        let four = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::cluster(4, CpuPlatform::skylake(), None),
            policy,
        );
        // Above one machine's knee (~9.5k QPS at batch 64), far below
        // four machines' aggregate capacity.
        let load = 12_000.0;
        let r1 = one.run(&mut gen(load, 11), RunOptions::queries(2000));
        let r4 = four.run(&mut gen(load, 11), RunOptions::queries(2000));
        assert!(
            r4.latency.p95_ms < r1.latency.p95_ms / 2.0,
            "4 machines p95 {} vs 1 machine {}",
            r4.latency.p95_ms,
            r1.latency.p95_ms
        );
    }

    #[test]
    fn gpu_offload_accounts_work_share() {
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::skylake_with_gpu(),
            SchedulerPolicy::with_gpu(64, 150),
        );
        let report = sim.run(&mut gen(100.0, 13), RunOptions::queries(1500));
        assert!(
            report.gpu_work_fraction > 0.1,
            "gpu share {}",
            report.gpu_work_fraction
        );
        assert!(report.gpu_work_fraction < 0.9);
        assert!(report.gpu_utilization > 0.0);
    }

    #[test]
    fn gpu_helps_under_heavy_tail_load() {
        // The core DeepRecSched-GPU effect: offloading big queries
        // relieves the CPU tail at loads where CPU-only saturates.
        // Just above the CPU-only knee for RMC1 at batch 64 (~9.5k QPS);
        // a threshold of 500 sends ~1 % of queries (≈12 % of items) to
        // the GPU, relieving the CPU tail without saturating the device.
        let load = 11_000.0;
        let cpu_only = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let with_gpu = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::skylake_with_gpu(),
            SchedulerPolicy::with_gpu(64, 500),
        );
        let r_cpu = cpu_only.run(&mut gen(load, 17), RunOptions::queries(2500));
        let r_gpu = with_gpu.run(&mut gen(load, 17), RunOptions::queries(2500));
        assert!(
            r_gpu.latency.p95_ms < r_cpu.latency.p95_ms,
            "GPU p95 {} vs CPU p95 {}",
            r_gpu.latency.p95_ms,
            r_cpu.latency.p95_ms
        );
    }

    #[test]
    fn power_accounting_positive_and_bounded() {
        let sim = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::skylake_with_gpu(),
            SchedulerPolicy::with_gpu(128, 100),
        );
        let report = sim.run(&mut gen(300.0, 19), RunOptions::queries(1000));
        let cpu = CpuPlatform::skylake();
        let gpu = GpuPlatform::gtx_1080ti();
        assert!(report.avg_power_w >= cpu.idle_w + gpu.idle_w - 1e-9);
        assert!(report.avg_power_w <= cpu.tdp_w + gpu.tdp_w + 1e-9);
        assert!(report.qps_per_watt > 0.0);
    }

    #[test]
    #[should_panic(expected = "GPU the cluster does not have")]
    fn offload_without_gpu_rejected() {
        let _ = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::with_gpu(64, 100),
        );
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use drs_models::zoo;
    use drs_query::{ArrivalProcess, SizeDistribution};

    #[test]
    #[ignore]
    fn capacity_probe() {
        for (name, cfg) in [
            ("RMC1", zoo::dlrm_rmc1()),
            ("RMC2", zoo::dlrm_rmc2()),
            ("RMC3", zoo::dlrm_rmc3()),
            ("NCF", zoo::ncf()),
            ("WND", zoo::wide_and_deep()),
            ("DIEN", zoo::dien()),
        ] {
            for load in [500.0, 2000.0, 8000.0, 16000.0, 32000.0] {
                let sim = Simulation::new(
                    &cfg,
                    ClusterConfig::single_skylake(),
                    SchedulerPolicy::cpu_only(64),
                );
                let mut gen = QueryGenerator::new(
                    ArrivalProcess::poisson(load),
                    SizeDistribution::production(),
                    7,
                );
                let r = sim.run(&mut gen, RunOptions::queries(2000));
                println!(
                    "{name} load {load}: qps {:.0} p95 {:.1}ms util {:.2}",
                    r.qps, r.latency.p95_ms, r.cpu_utilization
                );
            }
        }
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use drs_models::zoo;
    use drs_query::{ArrivalProcess, SizeDistribution};

    fn gen(rate: f64, seed: u64) -> QueryGenerator {
        QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            seed,
        )
    }

    fn capacity_proxy(sim: &Simulation, load: f64) -> f64 {
        let mut g = gen(load, 31);
        sim.run(&mut g, RunOptions::queries(2000)).qps
    }

    #[test]
    fn mixed_fleet_capacity_between_pure_fleets() {
        // 2 Skylake + 2 Broadwell should sustain throughput between
        // 4x Broadwell and 4x Skylake under deep saturation.
        let cfg = zoo::dlrm_rmc1();
        let policy = SchedulerPolicy::cpu_only(128);
        let load = 12_000.0; // saturates all three fleets
        let skl = Simulation::new(
            &cfg,
            ClusterConfig::cluster(4, CpuPlatform::skylake(), None),
            policy,
        );
        let bdw = Simulation::new(
            &cfg,
            ClusterConfig::cluster(4, CpuPlatform::broadwell(), None),
            policy,
        );
        let mix = Simulation::new_heterogeneous(
            &cfg,
            vec![
                CpuPlatform::skylake(),
                CpuPlatform::skylake(),
                CpuPlatform::broadwell(),
                CpuPlatform::broadwell(),
            ],
            None,
            policy,
        );
        let (q_skl, q_bdw, q_mix) = (
            capacity_proxy(&skl, load),
            capacity_proxy(&bdw, load),
            capacity_proxy(&mix, load),
        );
        let (lo, hi) = (q_skl.min(q_bdw), q_skl.max(q_bdw));
        assert!(
            q_mix > lo * 0.95 && q_mix < hi * 1.05,
            "mixed fleet {q_mix} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn hetero_fleet_completes_and_accounts_power() {
        let cfg = zoo::ncf();
        let sim = Simulation::new_heterogeneous(
            &cfg,
            vec![CpuPlatform::skylake(), CpuPlatform::broadwell()],
            None,
            SchedulerPolicy::cpu_only(64),
        );
        let r = sim.run(&mut gen(500.0, 9), RunOptions::queries(1000));
        assert_eq!(r.completed, 900);
        // Power must be at least both machines idling, at most both at
        // TDP.
        let idle = CpuPlatform::skylake().idle_w + CpuPlatform::broadwell().idle_w;
        let tdp = CpuPlatform::skylake().tdp_w + CpuPlatform::broadwell().tdp_w;
        assert!(r.avg_power_w >= idle - 1e-9 && r.avg_power_w <= tdp + 1e-9);
    }

    #[test]
    #[should_panic(expected = "a fleet needs machines")]
    fn empty_fleet_rejected() {
        let _ =
            Simulation::new_heterogeneous(&zoo::ncf(), vec![], None, SchedulerPolicy::cpu_only(64));
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use drs_core::NodeSpec;
    use drs_models::zoo;
    use drs_query::{ArrivalProcess, SizeDistribution};
    use drs_shard::{PlacementPolicy, ShardPlan};

    fn fleet(n: usize, gib: u64) -> ClusterTopology {
        ClusterTopology::new(vec![
            NodeSpec::cpu_only(CpuPlatform::skylake())
                .with_mem_bytes(gib << 30);
            n
        ])
    }

    fn sharded_sim(nodes: usize, gib: u64) -> Simulation {
        let cfg = zoo::dlrm_rmc2();
        let topo = fleet(nodes, gib);
        let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
        Simulation::with_topology(&cfg, topo, SchedulerPolicy::cpu_only(64))
            .with_shard_plan(&plan, InterconnectModel::datacenter_100g())
    }

    fn gen(rate: f64, seed: u64) -> QueryGenerator {
        QueryGenerator::new(
            ArrivalProcess::poisson(rate),
            SizeDistribution::production(),
            seed,
        )
    }

    #[test]
    fn sharded_sim_completes_every_measured_query() {
        let sim = sharded_sim(2, 16);
        assert!(sim.label().contains("sharded x2"), "{}", sim.label());
        let r = sim.run(&mut gen(400.0, 5), RunOptions::queries(1000));
        assert_eq!(r.completed, 900);
        assert!(r.latency.p95_ms > 0.0);
    }

    #[test]
    fn sharded_sim_is_deterministic() {
        let mk = || {
            sharded_sim(4, 8)
                .run(&mut gen(1_000.0, 23), RunOptions::queries(1200))
                .latencies_ms
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sharded_latency_carries_the_exchange_floor() {
        // At near-zero load every query's latency includes at least the
        // fabric round-trip + dense tail: the minimum cannot dip below
        // the interconnect's fixed cost.
        let sim = sharded_sim(2, 16);
        let r = sim.run(&mut gen(5.0, 9), RunOptions::queries(200));
        let floor_ms = InterconnectModel::datacenter_100g().per_hop_us / 1e3;
        assert!(
            r.latency.min_ms > floor_ms,
            "min {} below exchange floor {}",
            r.latency.min_ms,
            floor_ms
        );
    }

    #[test]
    fn more_shards_sustain_more_load() {
        // The capacity-scale-out effect in the simulator: the same
        // saturating stream sees a far lower tail when the gather
        // traffic spreads over 8 nodes instead of 2.
        let heavy = 2_500.0;
        let r2 = sharded_sim(2, 16).run(&mut gen(heavy, 31), RunOptions::queries(1500));
        let r8 = sharded_sim(8, 16).run(&mut gen(heavy, 31), RunOptions::queries(1500));
        assert!(
            r8.latency.p95_ms < r2.latency.p95_ms / 2.0,
            "8 shards p95 {} vs 2 shards {}",
            r8.latency.p95_ms,
            r2.latency.p95_ms
        );
    }

    #[test]
    #[should_panic(expected = "policy must not offload")]
    fn sharded_offload_rejected() {
        let cfg = zoo::dlrm_rmc2();
        let topo = ClusterTopology::new(vec![
            NodeSpec::with_gpu(
                CpuPlatform::skylake(),
                GpuPlatform::gtx_1080ti()
            )
            .with_mem_bytes(16 << 30);
            2
        ]);
        let plan = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
        let _ = Simulation::with_topology(&cfg, topo, SchedulerPolicy::with_gpu(64, 200))
            .with_shard_plan(&plan, InterconnectModel::datacenter_100g());
    }
}

#[cfg(test)]
mod multitenant_tests {
    use super::*;
    use drs_core::TenantSpec;
    use drs_models::zoo;
    use drs_query::{ArrivalProcess, MixedStream, SizeDistribution, TenantId};

    fn mixed(rates: &[f64], seed: u64, n: usize) -> Vec<drs_query::Query> {
        MixedStream::new(
            rates
                .iter()
                .enumerate()
                .map(|(k, &r)| {
                    QueryGenerator::new(
                        ArrivalProcess::poisson(r),
                        SizeDistribution::production(),
                        seed + k as u64,
                    )
                })
                .collect(),
        )
        .take(n)
        .collect()
    }

    fn two_tenant_sim() -> Simulation {
        Simulation::new_multi(
            &MultiModelSpec::new(vec![
                TenantSpec::new(zoo::dlrm_rmc1(), SchedulerPolicy::cpu_only(64)),
                TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(128)),
            ]),
            ClusterTopology::uniform(1, CpuPlatform::skylake(), None),
        )
    }

    #[test]
    fn co_location_completes_and_reports_per_tenant() {
        let sim = two_tenant_sim();
        assert_eq!(sim.label(), "sim x1 multi x2");
        let qs = mixed(&[300.0, 300.0], 7, 1_000);
        let r = sim.serve_queries(&qs);
        assert_eq!(r.completed, 900, "10% warm-up excluded");
        assert_eq!(r.tenant_breakdowns.len(), 2);
        let total: u64 = r.tenant_breakdowns.iter().map(|b| b.completed).sum();
        assert_eq!(total, r.completed, "breakdowns partition the window");
        assert_eq!(r.tenant_breakdowns[0].tenant, TenantId(0));
        assert_eq!(r.tenant_breakdowns[0].sla_ms, 100.0, "RMC1 tier");
        assert_eq!(r.tenant_breakdowns[1].sla_ms, 5.0, "NCF tier");
        for b in &r.tenant_breakdowns {
            assert!(
                b.completed > 200,
                "tenant {} starved: {}",
                b.tenant,
                b.completed
            );
            assert!(b.latency.p95_ms > 0.0);
        }
    }

    #[test]
    fn multi_tenant_sim_is_deterministic() {
        let qs = mixed(&[500.0, 120.0], 23, 1_200);
        let mk = || format!("{:?}", two_tenant_sim().serve_queries(&qs));
        assert_eq!(mk(), mk());
    }

    #[test]
    fn tenant_costs_differ() {
        // The same stream priced per tenant: RMC2 (embedding-heavy) is
        // far slower per query than NCF, and the per-tenant breakdowns
        // must show it even though both share the machine.
        let sim = Simulation::new_multi(
            &MultiModelSpec::new(vec![
                TenantSpec::new(zoo::dlrm_rmc2(), SchedulerPolicy::cpu_only(64)),
                TenantSpec::new(zoo::ncf(), SchedulerPolicy::cpu_only(64)),
            ]),
            ClusterTopology::uniform(1, CpuPlatform::skylake(), None),
        );
        let qs = mixed(&[50.0, 50.0], 11, 600);
        let r = sim.serve_queries(&qs);
        let (rmc2, ncf) = (&r.tenant_breakdowns[0], &r.tenant_breakdowns[1]);
        assert!(
            rmc2.latency.p95_ms > 3.0 * ncf.latency.p95_ms,
            "RMC2 p95 {} vs NCF {}",
            rmc2.latency.p95_ms,
            ncf.latency.p95_ms
        );
    }

    #[test]
    #[should_panic(expected = "tagged t1 but the simulation serves 1 tenant")]
    fn untracked_tenant_rejected() {
        let sim = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let qs = mixed(&[100.0, 100.0], 3, 50);
        let _ = sim.serve_queries(&qs);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use drs_models::zoo;
    use drs_query::trace::Trace;
    use drs_query::{ArrivalProcess, SizeDistribution};

    #[test]
    fn trace_replay_matches_generator_run() {
        // Recording a stream and replaying it must produce the exact
        // same simulation results as running the stream directly.
        let cfg = zoo::dlrm_rmc1();
        let sim = Simulation::new(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let mk_gen = || {
            QueryGenerator::new(
                ArrivalProcess::poisson(500.0),
                SizeDistribution::production(),
                17,
            )
        };
        let direct = sim.run(&mut mk_gen(), RunOptions::queries(800));
        let trace = Trace::record(mk_gen(), 800);
        let replayed = sim.run_trace(&trace, RunOptions::queries(800));
        assert_eq!(direct.completed, replayed.completed);
        assert_eq!(direct.latency.p95_ms, replayed.latency.p95_ms);
        assert_eq!(direct.latencies_ms, replayed.latencies_ms);
    }

    #[test]
    fn trace_replay_survives_serialization() {
        let cfg = zoo::ncf();
        let sim = Simulation::new(
            &cfg,
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(128),
        );
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(2000.0),
            SizeDistribution::production(),
            23,
        );
        let trace = Trace::record(gen, 500);
        let mut buf = Vec::new();
        trace.write(&mut buf).unwrap();
        let parsed = Trace::read(buf.as_slice()).unwrap();
        let a = sim.run_trace(&trace, RunOptions::queries(500));
        let b = sim.run_trace(&parsed, RunOptions::queries(500));
        // Nanosecond-rounded arrivals: distributions agree tightly.
        assert_eq!(a.completed, b.completed);
        assert!((a.latency.p95_ms - b.latency.p95_ms).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let sim = Simulation::new(
            &zoo::ncf(),
            ClusterConfig::single_skylake(),
            SchedulerPolicy::cpu_only(64),
        );
        let _ = sim.run_trace(&Trace::from_pairs(&[]), RunOptions::queries(10));
    }
}
