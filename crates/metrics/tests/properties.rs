//! Property-based tests for the metrics crate.

use drs_metrics::{percentile_of_sorted, Histogram, LatencyRecorder, P2Quantile};
use proptest::prelude::*;

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any percentile of a window lies within [min, max].
    #[test]
    fn percentile_bounded(samples in prop::collection::vec(0.0f64..1e6, 1..500), q in 0.0f64..=1.0) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record_ms(s);
        }
        let p = rec.percentile_ms(q).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9, "p{q}={p} outside [{min}, {max}]");
    }

    /// Percentiles are monotone non-decreasing in the quantile.
    #[test]
    fn percentile_monotone(samples in prop::collection::vec(0.0f64..1e4, 2..200)) {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let p = percentile_of_sorted(&sorted, q);
            prop_assert!(p >= prev - 1e-9);
            prev = p;
        }
    }

    /// The P2 estimate of the median converges near the exact median for
    /// uniform data.
    #[test]
    fn p2_median_close_to_exact(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..4000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut est = P2Quantile::new(0.5);
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            est.observe(s);
            rec.record_ms(s);
        }
        let exact = rec.percentile_ms(0.5).unwrap();
        let got = est.value().unwrap();
        prop_assert!((got - exact).abs() < 5.0, "P2 median {got} vs exact {exact}");
    }

    /// Histogram CDF terminates at 1.0 and is monotone.
    #[test]
    fn histogram_cdf_valid(samples in prop::collection::vec(0.01f64..1e4, 1..300)) {
        let mut h = Histogram::new(0.01, 1e4, 32);
        for &s in &samples {
            h.record(s);
        }
        let cdf = h.cdf();
        prop_assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    /// KS distance is symmetric and zero against self.
    #[test]
    fn ks_distance_properties(a in prop::collection::vec(0.1f64..999.0, 1..200),
                              b in prop::collection::vec(0.1f64..999.0, 1..200)) {
        let mut ha = Histogram::new(0.1, 1000.0, 24);
        let mut hb = Histogram::new(0.1, 1000.0, 24);
        for &x in &a { ha.record(x); }
        for &x in &b { hb.record(x); }
        prop_assert!(ha.max_cdf_distance(&ha) < 1e-12);
        let d1 = ha.max_cdf_distance(&hb);
        let d2 = hb.max_cdf_distance(&ha);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d1));
    }
}
