//! Measurement primitives for the DeepRecSys reproduction.
//!
//! The paper evaluates every design point as *throughput (QPS) under a p95
//! tail-latency SLA* and as *power efficiency (QPS/Watt)*. This crate
//! provides the measurement substrate shared by the real serving engine
//! (`drs-engine`) and the discrete-event simulator (`drs-sim`):
//!
//! * [`LatencyRecorder`] — exact percentile computation over a recorded
//!   window of latencies,
//! * [`P2Quantile`] — the P² streaming quantile estimator for
//!   constant-memory percentile tracking in long simulations,
//! * [`StreamingLatency`] — a full [`LatencySummary`] digest built on
//!   P² markers, for per-tenant tails over unbounded soaks,
//! * [`Histogram`] — log-bucketed latency histograms for distribution
//!   comparisons (used by the Figure 7 subsampling experiment),
//! * [`ThroughputMeter`] and [`EnergyMeter`] — QPS and QPS/Watt
//!   accounting,
//! * [`MetricsRegistry`] — the fleet-pulse time-series registry
//!   (counters, gauges, windowed P² histograms) sampled on the virtual
//!   clock, with byte-deterministic JSONL and Prometheus exporters and
//!   an in-repo [`parse_prometheus`] proving the exposition lossless.
//!
//! # Examples
//!
//! ```
//! use drs_metrics::LatencyRecorder;
//!
//! let mut rec = LatencyRecorder::new();
//! for ms in [1.0, 2.0, 3.0, 4.0, 100.0] {
//!     rec.record_ms(ms);
//! }
//! let s = rec.summary();
//! assert_eq!(s.count, 5);
//! assert!(s.p50_ms >= 2.0 && s.p50_ms <= 4.0);
//! assert_eq!(s.max_ms, 100.0);
//! ```

#![warn(missing_docs)]

mod energy;
mod histogram;
mod p2;
mod percentile;
mod registry;
mod streaming;
mod throughput;

pub use energy::EnergyMeter;
pub use histogram::Histogram;
pub use p2::P2Quantile;
pub use percentile::{percentile_of_sorted, LatencyRecorder, LatencySummary};
pub use registry::{
    parse_prometheus, MetricKind, MetricSample, MetricsRegistry, PromExposition, PromFamily,
};
pub use streaming::StreamingLatency;
pub use throughput::ThroughputMeter;

/// Geometric mean of a slice of positive values.
///
/// Used for the "GeoMean" aggregate column of Figure 11. Returns `None`
/// for an empty slice or when any value is non-positive (the geometric
/// mean is undefined there).
///
/// # Examples
///
/// ```
/// let g = drs_metrics::geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean of a slice; `None` when empty.
///
/// # Examples
///
/// ```
/// assert_eq!(drs_metrics::mean(&[1.0, 3.0]), Some(2.0));
/// assert_eq!(drs_metrics::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geomean_single() {
        assert!((geomean(&[7.5]).unwrap() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]), Some(4.0));
    }
}
