//! Exact percentile computation over recorded latency windows.

/// Exact percentile of an **ascending-sorted** slice using linear
/// interpolation between closest ranks (the "linear" / type-7 method used
/// by NumPy's default `percentile`).
///
/// `q` is the quantile in `[0, 1]` (e.g. `0.95` for p95).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use drs_metrics::percentile_of_sorted;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_of_sorted(&v, 0.0), 1.0);
/// assert_eq!(percentile_of_sorted(&v, 1.0), 4.0);
/// assert_eq!(percentile_of_sorted(&v, 0.5), 2.5);
/// ```
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Summary statistics of a latency window, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Arithmetic mean latency.
    pub mean_ms: f64,
    /// Median (p50) latency.
    pub p50_ms: f64,
    /// 75th-percentile latency.
    pub p75_ms: f64,
    /// 95th-percentile (tail) latency — the paper's SLA metric.
    pub p95_ms: f64,
    /// 99th-percentile latency (Figure 13 reports p99 as well).
    pub p99_ms: f64,
    /// Maximum observed latency.
    pub max_ms: f64,
    /// Minimum observed latency.
    pub min_ms: f64,
}

impl LatencySummary {
    /// A summary representing "no data" (all fields zero).
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p75_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            min_ms: 0.0,
        }
    }
}

/// Records a window of latencies and computes exact percentiles on demand.
///
/// Latencies are stored as `f64` milliseconds. This is the ground-truth
/// estimator: the simulator uses it for experiment windows (tens of
/// thousands of samples), and [`crate::P2Quantile`] is validated against
/// it in tests.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder {
            samples_ms: Vec::with_capacity(n),
        }
    }

    /// Records one latency in milliseconds.
    ///
    /// Non-finite or negative samples are ignored (they indicate a
    /// measurement bug upstream, and must not corrupt tail statistics).
    pub fn record_ms(&mut self, ms: f64) {
        if ms.is_finite() && ms >= 0.0 {
            self.samples_ms.push(ms);
        }
    }

    /// Records one latency expressed in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.record_ms(ns as f64 / 1.0e6);
    }

    /// Records a [`std::time::Duration`].
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record_ms(d.as_secs_f64() * 1e3);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Returns the raw samples (unsorted, in record order).
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Discards all recorded samples.
    pub fn clear(&mut self) {
        self.samples_ms.clear();
    }

    /// Merges the samples of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }

    /// Exact percentile of the recorded window; `None` when empty.
    pub fn percentile_ms(&self, q: f64) -> Option<f64> {
        if self.samples_ms.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Some(percentile_of_sorted(&sorted, q))
    }

    /// Full summary (computes all percentiles from one sort).
    pub fn summary(&self) -> LatencySummary {
        if self.samples_ms.is_empty() {
            return LatencySummary::empty();
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let sum: f64 = sorted.iter().sum();
        LatencySummary {
            count: sorted.len(),
            mean_ms: sum / sorted.len() as f64,
            p50_ms: percentile_of_sorted(&sorted, 0.50),
            p75_ms: percentile_of_sorted(&sorted, 0.75),
            p95_ms: percentile_of_sorted(&sorted, 0.95),
            p99_ms: percentile_of_sorted(&sorted, 0.99),
            max_ms: *sorted.last().expect("non-empty"),
            min_ms: sorted[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let v = [5.0];
        assert_eq!(percentile_of_sorted(&v, 0.5), 5.0);
        let v = [1.0, 9.0];
        assert_eq!(percentile_of_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&v, 1.0), 9.0);
        assert_eq!(percentile_of_sorted(&v, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_of_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_bad_q_panics() {
        percentile_of_sorted(&[1.0], 1.5);
    }

    #[test]
    fn recorder_summary_uniform() {
        let mut r = LatencyRecorder::new();
        // 1..=100 ms: p95 should be ~95 ms.
        for i in 1..=100 {
            r.record_ms(i as f64);
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.p95_ms - 95.05).abs() < 0.1, "p95={}", s.p95_ms);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.min_ms, 1.0);
    }

    #[test]
    fn recorder_rejects_garbage() {
        let mut r = LatencyRecorder::new();
        r.record_ms(f64::NAN);
        r.record_ms(f64::INFINITY);
        r.record_ms(-1.0);
        assert!(r.is_empty());
        r.record_ms(3.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn recorder_merge() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record_ms(1.0);
        b.record_ms(2.0);
        b.record_ms(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.summary().max_ms, 3.0);
    }

    #[test]
    fn record_units_agree() {
        let mut a = LatencyRecorder::new();
        a.record_ns(2_500_000); // 2.5 ms
        a.record_duration(std::time::Duration::from_micros(1500)); // 1.5 ms
        let s = a.summary();
        assert!((s.max_ms - 2.5).abs() < 1e-9);
        assert!((s.min_ms - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.summary(), LatencySummary::empty());
        assert_eq!(r.percentile_ms(0.95), None);
    }
}
