//! Deterministic time-series metrics: the fleet-pulse registry.
//!
//! End-of-run aggregates (the rest of this crate) answer "how did the
//! run do"; the registry answers "how did the system *evolve*": queue
//! depths, GPU backlog, knob trajectories, lane deficits — sampled on
//! the **virtual clock**, so two runs of the same seed export
//! byte-identical series, and an offload-all real run exports the same
//! series as its virtual twin (the PR 6 cross-validation axis extended
//! to time series).
//!
//! Three metric kinds:
//!
//! * **counters** — monotone `u64` totals ([`MetricsRegistry::inc`]);
//! * **gauges** — instantaneous `f64` values, overwritten between
//!   samples ([`MetricsRegistry::set_gauge`]);
//! * **windowed histograms** — [`P2Quantile`] digests over one
//!   sampling window ([`MetricsRegistry::observe`]); each
//!   [`MetricsRegistry::sample`] snapshots `_count`/`_p50`/`_p95`
//!   columns and resets the window.
//!
//! Exports are pinned by code in this repo: [`MetricsRegistry::to_jsonl`]
//! (one JSON object per sample row) and
//! [`MetricsRegistry::to_prometheus`] (text exposition with virtual-ns
//! timestamps), with [`parse_prometheus`] proving the exposition
//! lossless by re-rendering it byte-identically.

use crate::P2Quantile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a metric key is, for the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone total.
    Counter,
    /// Instantaneous value.
    Gauge,
}

impl MetricKind {
    fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// A latency-style digest over one sampling window: P² medians and
/// tails in constant memory, reset at every [`MetricsRegistry::sample`].
#[derive(Debug, Clone)]
struct WindowHist {
    p50: P2Quantile,
    p95: P2Quantile,
    count: u64,
}

impl WindowHist {
    fn new() -> Self {
        WindowHist {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        self.p50.observe(v);
        self.p95.observe(v);
        self.count += 1;
    }
}

/// One sampled row: every live metric's value at `t_ns`, keys
/// ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Virtual-clock sample time, ns since the run's epoch.
    pub t_ns: u64,
    /// `(key, value)` pairs, sorted by key.
    pub values: Vec<(String, f64)>,
}

impl MetricSample {
    /// The sampled value of `key` in this row, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.values[i].1)
    }
}

/// The fleet-pulse registry: named counters, gauges, and windowed
/// histograms, snapshotted into a time series by a virtual-clock
/// sampler.
///
/// Keys are plain `[a-z0-9_]` strings (dimensions are encoded in the
/// name, e.g. `queue_depth_n0`); all storage is `BTreeMap`, so every
/// export iterates in key order and runs are byte-reproducible.
///
/// # Examples
///
/// ```
/// use drs_metrics::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.set_gauge("queue_depth_n0", 3.0);
/// reg.inc("completed_total", 2);
/// reg.sample(1_000_000);
/// assert_eq!(reg.samples().len(), 1);
/// assert_eq!(reg.samples()[0].get("queue_depth_n0"), Some(3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    windows: BTreeMap<String, WindowHist>,
    /// Kind of every key that has appeared in a sample row (window
    /// digests expand to `_count`/`_p50`/`_p95` gauge columns).
    kinds: BTreeMap<String, MetricKind>,
    samples: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `key` (registering it at zero first).
    pub fn inc(&mut self, key: &str, by: u64) {
        match self.counters.get_mut(key) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(key.to_string(), by);
            }
        }
    }

    /// Sets gauge `key` to `v`; the value holds until overwritten.
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_string(), v);
    }

    /// Feeds `v` into windowed histogram `key` (current window only).
    pub fn observe(&mut self, key: &str, v: f64) {
        self.windows
            .entry(key.to_string())
            .or_insert_with(WindowHist::new)
            .observe(v);
    }

    /// Snapshots every live metric into a new sample row at `t_ns` and
    /// resets the histogram windows. Rows must be appended in
    /// non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `t_ns` precedes the previous sample's time.
    pub fn sample(&mut self, t_ns: u64) {
        if let Some(last) = self.samples.last() {
            assert!(
                t_ns >= last.t_ns,
                "sample clock went backwards: {t_ns} < {}",
                last.t_ns
            );
        }
        let mut values =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + 3 * self.windows.len());
        for (k, v) in &self.counters {
            values.push((k.clone(), *v as f64));
        }
        for (k, v) in &self.gauges {
            values.push((k.clone(), *v));
        }
        for (k, h) in &mut self.windows {
            values.push((format!("{k}_count"), h.count as f64));
            values.push((format!("{k}_p50"), h.p50.value().unwrap_or(0.0)));
            values.push((format!("{k}_p95"), h.p95.value().unwrap_or(0.0)));
            *h = WindowHist::new();
        }
        values.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, _) in &values {
            if !self.kinds.contains_key(k) {
                let kind = if self.counters.contains_key(k) {
                    MetricKind::Counter
                } else {
                    MetricKind::Gauge
                };
                self.kinds.insert(k.clone(), kind);
            }
        }
        self.samples.push(MetricSample { t_ns, values });
    }

    /// The sampled rows, in time order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// One metric's `(t_ns, value)` series across all samples.
    pub fn series(&self, key: &str) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        for s in &self.samples {
            if let Some(v) = s.get(key) {
                out.push((s.t_ns, v));
            }
        }
        out
    }

    /// Every key that has appeared in a sample row, ascending.
    pub fn keys(&self) -> Vec<String> {
        self.kinds.keys().cloned().collect()
    }

    /// Renders the series as JSONL: one JSON object per sample row,
    /// `t_ns` first, then every metric in key order. Byte-deterministic
    /// per run (f64 values print shortest-round-trip).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!("{{\"t_ns\": {}", s.t_ns));
            for (k, v) in &s.values {
                let _ = write!(out, ", \"{k}\": {}", fmt_f64(*v));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders the series as Prometheus text exposition: one `# TYPE`
    /// line per metric family, then that family's points in time order
    /// with the virtual-clock ns as the (in-repo) timestamp column.
    /// [`parse_prometheus`] re-reads exactly this shape.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, kind) in &self.kinds {
            let _ = writeln!(out, "# TYPE {key} {}", kind.prom());
            for s in &self.samples {
                if let Some(v) = s.get(key) {
                    let _ = writeln!(out, "{key} {} {}", fmt_f64(v), s.t_ns);
                }
            }
        }
        out
    }
}

/// Formats an `f64` the way every exporter here does: Rust's shortest
/// round-trip `Display`, so `parse::<f64>()` recovers the exact bits.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// One metric family of a parsed exposition: its `# TYPE` line and its
/// `(value, t_ns)` points in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Metric name.
    pub name: String,
    /// Declared type (`counter` or `gauge`).
    pub kind: String,
    /// `(value, t_ns)` points, in exposition order.
    pub points: Vec<(f64, u64)>,
}

/// A parsed Prometheus exposition: families in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PromExposition {
    /// Metric families, in exposition order.
    pub families: Vec<PromFamily>,
}

impl PromExposition {
    /// Re-renders the exposition; on text produced by
    /// [`MetricsRegistry::to_prometheus`] this reproduces the input
    /// byte-for-byte (the losslessness proof).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for (v, t) in &f.points {
                let _ = writeln!(out, "{} {} {}", f.name, fmt_f64(*v), t);
            }
        }
        out
    }

    /// Total number of points across all families.
    pub fn points(&self) -> usize {
        let mut n = 0;
        for f in &self.families {
            n += f.points.len();
        }
        n
    }
}

/// Parses text produced by [`MetricsRegistry::to_prometheus`] — the
/// in-repo proof that the exposition is lossless. Rejects anything the
/// exporter does not emit.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input:
/// a point before any `# TYPE` line, a point whose name disagrees with
/// its family, or an unparsable value/timestamp.
pub fn parse_prometheus(text: &str) -> Result<PromExposition, String> {
    let mut exp = PromExposition::default();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().filter(|s| !s.is_empty());
            let kind = it.next().filter(|s| !s.is_empty());
            match (name, kind, it.next()) {
                (Some(name), Some(kind), None) => exp.families.push(PromFamily {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    points: Vec::new(),
                }),
                _ => return Err(format!("line {n}: malformed TYPE line: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: unsupported comment: {line}"));
        }
        let mut it = line.split(' ');
        let (name, value, t) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(name), Some(v), Some(t), None) => (name, v, t),
            _ => return Err(format!("line {n}: malformed point: {line}")),
        };
        let fam = exp
            .families
            .last_mut()
            .ok_or_else(|| format!("line {n}: point before any TYPE line"))?;
        if fam.name != name {
            return Err(format!(
                "line {n}: point `{name}` inside family `{}`",
                fam.name
            ));
        }
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {n}: bad value {value}: {e}"))?;
        let t: u64 = t
            .parse()
            .map_err(|e| format!("line {n}: bad timestamp {t}: {e}"))?;
        fam.points.push((value, t));
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("queue_depth_n0", 3.0);
        reg.inc("completed_total", 1);
        reg.observe("latency_ms", 1.25);
        reg.observe("latency_ms", 4.75);
        reg.sample(1_000);
        reg.set_gauge("queue_depth_n0", 0.0);
        reg.inc("completed_total", 2);
        reg.sample(2_000);
        reg
    }

    #[test]
    fn samples_snapshot_in_key_order() {
        let reg = seeded();
        assert_eq!(reg.samples().len(), 2);
        let keys: Vec<&str> = reg.samples()[0]
            .values
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "sample rows are key-ordered");
        assert_eq!(reg.samples()[0].get("completed_total"), Some(1.0));
        assert_eq!(reg.samples()[1].get("completed_total"), Some(3.0));
    }

    #[test]
    fn window_resets_between_samples() {
        let reg = seeded();
        assert_eq!(reg.samples()[0].get("latency_ms_count"), Some(2.0));
        // Nothing observed in the second window.
        assert_eq!(reg.samples()[1].get("latency_ms_count"), Some(0.0));
        assert_eq!(reg.samples()[1].get("latency_ms_p95"), Some(0.0));
    }

    #[test]
    fn series_extracts_one_key() {
        let reg = seeded();
        assert_eq!(
            reg.series("queue_depth_n0"),
            vec![(1_000, 3.0), (2_000, 0.0)]
        );
        assert!(reg.series("missing").is_empty());
    }

    #[test]
    fn jsonl_is_deterministic_and_keyed() {
        let a = seeded().to_jsonl();
        let b = seeded().to_jsonl();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
        assert!(a.starts_with("{\"t_ns\": 1000"), "{a}");
        assert!(a.contains("\"latency_ms_count\": 2"), "{a}");
    }

    #[test]
    fn prometheus_round_trips_losslessly() {
        let text = seeded().to_prometheus();
        let parsed = parse_prometheus(&text).expect("parse own exposition");
        assert_eq!(parsed.render(), text, "re-render is byte-identical");
        assert_eq!(parsed.points(), 2 * seeded().keys().len());
        let fam = parsed
            .families
            .iter()
            .find(|f| f.name == "completed_total")
            .expect("family");
        assert_eq!(fam.kind, "counter");
        assert_eq!(fam.points, vec![(1.0, 1_000), (3.0, 2_000)]);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_prometheus("queue 1 2").is_err(), "point before TYPE");
        assert!(parse_prometheus("# TYPE only").is_err(), "short TYPE");
        let mixed = "# TYPE a gauge\nb 1 2\n";
        assert!(parse_prometheus(mixed).is_err(), "name outside family");
        let bad = "# TYPE a gauge\na x 2\n";
        assert!(parse_prometheus(bad).is_err(), "bad value");
    }

    #[test]
    #[should_panic(expected = "sample clock went backwards")]
    fn sample_rejects_time_regression() {
        let mut reg = MetricsRegistry::new();
        reg.sample(10);
        reg.sample(5);
    }
}
