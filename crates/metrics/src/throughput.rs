//! Throughput (QPS) accounting.

/// Counts completed queries over a time window and reports queries per
/// second.
///
/// Both the real engine (wall-clock seconds) and the simulator (virtual
/// seconds) use this; the caller supplies the elapsed time, so the meter
/// itself is clock-agnostic.
///
/// # Examples
///
/// ```
/// use drs_metrics::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new();
/// for _ in 0..500 {
///     m.record_completion();
/// }
/// assert_eq!(m.completed(), 500);
/// assert!((m.qps(2.0) - 250.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputMeter {
    completed: u64,
    items: u64,
}

impl ThroughputMeter {
    /// Creates a meter with zero completions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the completion of one query.
    pub fn record_completion(&mut self) {
        self.completed += 1;
    }

    /// Records the completion of one query carrying `items`
    /// candidate items (the query's working-set size).
    pub fn record_query(&mut self, items: u64) {
        self.completed += 1;
        self.items += items;
    }

    /// Total completed queries.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total completed candidate items across all queries.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Queries per second over `elapsed_s` seconds.
    ///
    /// Returns 0.0 for a non-positive window.
    pub fn qps(&self, elapsed_s: f64) -> f64 {
        if elapsed_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / elapsed_s
        }
    }

    /// Candidate items per second over `elapsed_s` seconds (throughput in
    /// work units rather than queries, useful when comparing
    /// configurations under different size distributions).
    pub fn items_per_second(&self, elapsed_s: f64) -> f64 {
        if elapsed_s <= 0.0 {
            0.0
        } else {
            self.items as f64 / elapsed_s
        }
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qps_zero_window() {
        let m = ThroughputMeter::new();
        assert_eq!(m.qps(0.0), 0.0);
        assert_eq!(m.qps(-1.0), 0.0);
    }

    #[test]
    fn items_accounting() {
        let mut m = ThroughputMeter::new();
        m.record_query(100);
        m.record_query(300);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.items(), 400);
        assert!((m.items_per_second(4.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut m = ThroughputMeter::new();
        m.record_query(10);
        m.reset();
        assert_eq!(m.completed(), 0);
        assert_eq!(m.items(), 0);
    }
}
