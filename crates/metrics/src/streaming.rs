//! Constant-memory latency summaries for long-running streams.

use crate::p2::P2Quantile;
use crate::percentile::LatencySummary;

/// A streaming [`LatencySummary`] estimator in constant memory.
///
/// [`crate::LatencyRecorder`] retains every sample so it can compute
/// exact percentiles — the right trade for a bounded experiment
/// window, the wrong one for a long soak with many per-tenant
/// recorders. This digest keeps exact count/mean/min/max plus one
/// [`P2Quantile`] estimator per reported percentile (p50/p75/p95/p99),
/// so a summary costs a few dozen floats no matter how long the run.
///
/// The P² markers are deterministic in the observation sequence:
/// feeding two digests the identical ordered stream yields bit-equal
/// summaries, which is what lets real-vs-virtual cross-validation
/// keep asserting per-tenant tails with zero tolerance.
///
/// # Examples
///
/// ```
/// use drs_metrics::StreamingLatency;
/// let mut s = StreamingLatency::new();
/// for i in 1..=100 {
///     s.observe_ms(i as f64);
/// }
/// let summary = s.summary();
/// assert_eq!(summary.count, 100);
/// assert!((summary.mean_ms - 50.5).abs() < 1e-9);
/// assert!((summary.p95_ms - 95.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingLatency {
    count: usize,
    sum_ms: f64,
    min_ms: f64,
    max_ms: f64,
    p50: P2Quantile,
    p75: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl StreamingLatency {
    /// Creates an empty digest.
    pub fn new() -> Self {
        StreamingLatency {
            count: 0,
            sum_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: 0.0,
            p50: P2Quantile::new(0.50),
            p75: P2Quantile::new(0.75),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Observes one latency in milliseconds.
    ///
    /// Non-finite or negative samples are ignored, matching
    /// [`crate::LatencyRecorder::record_ms`].
    pub fn observe_ms(&mut self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        self.count += 1;
        self.sum_ms += ms;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
        self.p50.observe(ms);
        self.p75.observe(ms);
        self.p95.observe(ms);
        self.p99.observe(ms);
    }

    /// Observes one latency expressed in nanoseconds.
    pub fn observe_ns(&mut self, ns: u64) {
        self.observe_ms(ns as f64 / 1.0e6);
    }

    /// Number of observed samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The streaming summary: exact count/mean/min/max, P²-estimated
    /// percentiles (exact while fewer than five samples are held).
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::empty();
        }
        LatencySummary {
            count: self.count,
            mean_ms: self.sum_ms / self.count as f64,
            p50_ms: self.p50.value().unwrap_or(0.0),
            p75_ms: self.p75.value().unwrap_or(0.0),
            p95_ms: self.p95.value().unwrap_or(0.0),
            p99_ms: self.p99.value().unwrap_or(0.0),
            max_ms: self.max_ms,
            min_ms: self.min_ms,
        }
    }
}

impl Default for StreamingLatency {
    fn default() -> Self {
        StreamingLatency::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::LatencyRecorder;

    #[test]
    fn empty_summary_matches_recorder() {
        assert_eq!(StreamingLatency::new().summary(), LatencySummary::empty());
    }

    #[test]
    fn tracks_exact_recorder_closely_on_a_long_stream() {
        // A deterministic heavy-ish tailed stream: mostly small,
        // occasional spikes — the shape tenant latencies take.
        let mut exact = LatencyRecorder::new();
        let mut stream = StreamingLatency::new();
        let mut x = 9_u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            let ms = 1.0 + 40.0 * u * u * u;
            exact.record_ms(ms);
            stream.observe_ms(ms);
        }
        let (e, s) = (exact.summary(), stream.summary());
        assert_eq!(e.count, s.count);
        assert!((e.mean_ms - s.mean_ms).abs() < 1e-9, "mean is exact");
        assert_eq!(e.min_ms, s.min_ms);
        assert_eq!(e.max_ms, s.max_ms);
        for (a, b, name) in [
            (e.p50_ms, s.p50_ms, "p50"),
            (e.p75_ms, s.p75_ms, "p75"),
            (e.p95_ms, s.p95_ms, "p95"),
            (e.p99_ms, s.p99_ms, "p99"),
        ] {
            assert!(
                (a - b).abs() / a.max(1e-12) < 0.05,
                "{name}: exact {a} vs streaming {b}"
            );
        }
    }

    #[test]
    fn deterministic_in_the_observation_sequence() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 / 7.0).collect();
        let mut a = StreamingLatency::new();
        let mut b = StreamingLatency::new();
        for &s in &samples {
            a.observe_ms(s);
            b.observe_ms(s);
        }
        let (sa, sb) = (a.summary(), b.summary());
        assert_eq!(sa.p95_ms.to_bits(), sb.p95_ms.to_bits());
        assert_eq!(sa.p99_ms.to_bits(), sb.p99_ms.to_bits());
    }

    #[test]
    fn ignores_garbage_like_the_recorder() {
        let mut s = StreamingLatency::new();
        s.observe_ms(f64::NAN);
        s.observe_ms(-3.0);
        assert!(s.is_empty());
        s.observe_ms(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.summary().p95_ms, 2.0, "exact below five samples");
    }
}
