//! Log-bucketed histograms for latency-distribution comparisons.

/// A histogram with logarithmically spaced buckets.
///
/// Used by the Figure 7 subsampling experiment to compare the latency
/// *distribution* measured on a handful of machines against the
/// datacenter-scale distribution: the paper's claim is that the two CDFs
/// agree to within ~10 %, which we check with
/// [`Histogram::max_cdf_distance`] (the Kolmogorov–Smirnov statistic).
///
/// # Examples
///
/// ```
/// use drs_metrics::Histogram;
///
/// let mut h = Histogram::new(0.1, 1000.0, 64);
/// for ms in [1.0, 2.0, 4.0, 8.0] {
///     h.record(ms);
/// }
/// assert_eq!(h.count(), 4);
/// let cdf = h.cdf();
/// assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    max: f64,
    /// `buckets[i]` counts samples in the i-th log-spaced bucket;
    /// two extra buckets catch under/overflow.
    buckets: Vec<u64>,
    log_min: f64,
    log_width: f64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram spanning `[min, max]` with `n` log-spaced
    /// buckets (plus underflow and overflow buckets).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and `n >= 1`.
    pub fn new(min: f64, max: f64, n: usize) -> Self {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(n >= 1, "need at least one bucket");
        let log_min = min.ln();
        let log_width = (max.ln() - log_min) / n as f64;
        Histogram {
            min,
            max,
            buckets: vec![0; n + 2],
            log_min,
            log_width,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records a sample. Non-finite samples are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = if x < self.min {
            0
        } else if x >= self.max {
            self.buckets.len() - 1
        } else {
            let i = ((x.ln() - self.log_min) / self.log_width) as usize;
            // Guard against floating-point edge landing on n.
            1 + i.min(self.buckets.len() - 3)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Upper edge of bucket `i` (of the interior buckets).
    fn bucket_edge(&self, i: usize) -> f64 {
        (self.log_min + (i as f64 + 1.0) * self.log_width).exp()
    }

    /// Empirical CDF as `(upper_edge, cumulative_fraction)` pairs over the
    /// interior buckets; the underflow bucket folds into the first point
    /// and the overflow bucket into a final `(max, 1.0)` point.
    ///
    /// Returns an empty vector when no samples were recorded.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let n = self.buckets.len() - 2;
        let mut out = Vec::with_capacity(n + 1);
        let mut cum = self.buckets[0];
        for i in 0..n {
            cum += self.buckets[i + 1];
            out.push((self.bucket_edge(i), cum as f64 / self.count as f64));
        }
        cum += self.buckets[n + 1];
        out.push((self.max, cum as f64 / self.count as f64));
        out
    }

    /// Kolmogorov–Smirnov distance between the CDFs of two histograms
    /// with identical bucket layout.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ or either histogram is empty.
    pub fn max_cdf_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histograms must share a layout"
        );
        assert!(
            (self.min - other.min).abs() < 1e-12 && (self.max - other.max).abs() < 1e-12,
            "histograms must share a range"
        );
        let a = self.cdf();
        let b = other.cdf();
        a.iter()
            .zip(&b)
            .map(|((_, fa), (_, fb))| (fa - fb).abs())
            .fold(0.0, f64::max)
    }

    /// Raw bucket counts including under/overflow (for debugging dumps).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_range() {
        let mut h = Histogram::new(1.0, 1000.0, 30);
        h.record(0.5); // underflow
        h.record(1.0);
        h.record(999.0);
        h.record(1000.0); // overflow edge
        h.record(5000.0); // overflow
        assert_eq!(h.count(), 5);
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_histograms_zero_distance() {
        let mut a = Histogram::new(1.0, 100.0, 16);
        let mut b = Histogram::new(1.0, 100.0, 16);
        for i in 1..100 {
            a.record(i as f64);
            b.record(i as f64);
        }
        assert_eq!(a.max_cdf_distance(&b), 0.0);
    }

    #[test]
    fn shifted_histograms_positive_distance() {
        let mut a = Histogram::new(1.0, 100.0, 16);
        let mut b = Histogram::new(1.0, 100.0, 16);
        for i in 1..50 {
            a.record(i as f64);
            b.record((i * 2) as f64);
        }
        assert!(a.max_cdf_distance(&b) > 0.2);
    }

    #[test]
    #[should_panic(expected = "share a layout")]
    fn mismatched_layout_panics() {
        let mut a = Histogram::new(1.0, 100.0, 16);
        let mut b = Histogram::new(1.0, 100.0, 8);
        a.record(2.0);
        b.record(2.0);
        a.max_cdf_distance(&b);
    }

    #[test]
    fn mean_tracks_samples() {
        let mut h = Histogram::new(0.1, 10.0, 8);
        assert_eq!(h.mean(), None);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn ignores_nan() {
        let mut h = Histogram::new(0.1, 10.0, 8);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }
}
