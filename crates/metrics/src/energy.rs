//! Energy accounting for QPS/Watt power-efficiency results.

/// Integrates device power over (possibly virtual) time to produce the
/// average power draw behind the paper's QPS/Watt metric (Figure 11
/// bottom, Figure 14b).
///
/// Callers feed piecewise-constant power segments: "device drew `watts`
/// for `seconds`". The meter accumulates energy in joules; average power
/// is energy divided by total observed time.
///
/// # Examples
///
/// ```
/// use drs_metrics::EnergyMeter;
///
/// let mut e = EnergyMeter::new();
/// e.add_segment(100.0, 2.0); // 100 W for 2 s
/// e.add_segment(50.0, 2.0);  // 50 W for 2 s
/// assert!((e.energy_j() - 300.0).abs() < 1e-9);
/// assert!((e.average_power_w() - 75.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyMeter {
    energy_j: f64,
    elapsed_s: f64,
}

impl EnergyMeter {
    /// Creates a meter with no accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `watts` drawn over `seconds`.
    ///
    /// Negative or non-finite segments are ignored.
    pub fn add_segment(&mut self, watts: f64, seconds: f64) {
        if watts.is_finite() && seconds.is_finite() && watts >= 0.0 && seconds > 0.0 {
            self.energy_j += watts * seconds;
            self.elapsed_s += seconds;
        }
    }

    /// Merges another meter's accumulation into this one.
    ///
    /// Use when summing per-device meters that cover the *same* wall/virtual
    /// time span is not desired; for parallel devices over the same span,
    /// prefer [`EnergyMeter::add_parallel`].
    pub fn merge_serial(&mut self, other: &EnergyMeter) {
        self.energy_j += other.energy_j;
        self.elapsed_s += other.elapsed_s;
    }

    /// Adds energy from a device that ran *in parallel* over the same
    /// time span (energy adds, elapsed time does not).
    pub fn add_parallel(&mut self, other: &EnergyMeter) {
        self.energy_j += other.energy_j;
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
    }

    /// Total accumulated energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total observed time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Average power in watts (0.0 before any segment).
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.energy_j / self.elapsed_s
        }
    }

    /// Power efficiency: queries per second per watt.
    ///
    /// Returns 0.0 when no energy has been observed (avoids dividing by
    /// zero when a device never turned on).
    pub fn qps_per_watt(&self, qps: f64) -> f64 {
        let p = self.average_power_w();
        if p <= 0.0 {
            0.0
        } else {
            qps / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_segments() {
        let mut e = EnergyMeter::new();
        e.add_segment(120.0, 10.0);
        assert_eq!(e.energy_j(), 1200.0);
        assert_eq!(e.average_power_w(), 120.0);
    }

    #[test]
    fn parallel_devices_sum_power() {
        let mut cpu = EnergyMeter::new();
        cpu.add_segment(125.0, 30.0);
        let mut gpu = EnergyMeter::new();
        gpu.add_segment(250.0, 30.0);
        let mut total = EnergyMeter::new();
        total.add_parallel(&cpu);
        total.add_parallel(&gpu);
        assert!((total.average_power_w() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn qps_per_watt() {
        let mut e = EnergyMeter::new();
        e.add_segment(100.0, 1.0);
        assert!((e.qps_per_watt(500.0) - 5.0).abs() < 1e-12);
        let empty = EnergyMeter::new();
        assert_eq!(empty.qps_per_watt(500.0), 0.0);
    }

    #[test]
    fn rejects_garbage_segments() {
        let mut e = EnergyMeter::new();
        e.add_segment(-5.0, 1.0);
        e.add_segment(f64::NAN, 1.0);
        e.add_segment(10.0, 0.0);
        assert_eq!(e.energy_j(), 0.0);
    }
}
