//! The P² (piecewise-parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac, "The P² algorithm for dynamic calculation of
//! quantiles and histograms without storing observations", CACM 1985.
//!
//! Long-running cluster simulations (Figure 13 runs 24 hours of virtual
//! time) would otherwise accumulate tens of millions of latency samples;
//! P² tracks a quantile in O(1) memory with bounded error.

/// Streaming estimator of a single quantile using five markers.
///
/// # Examples
///
/// ```
/// use drs_metrics::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=1000 {
///     p95.observe(i as f64);
/// }
/// let est = p95.value().unwrap();
/// assert!((est - 950.0).abs() < 20.0, "p95 estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations seen so far.
    count: usize,
    /// First five observations, buffered until initialization.
    init: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile {q} must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: [0.0; 5],
        }
    }

    /// The quantile being estimated.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation into the estimator.
    ///
    /// Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.init[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                self.heights = self.init;
            }
            return;
        }
        self.count += 1;

        // Locate the cell containing x and clamp extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers (1..=3) if they drifted off their
        // desired positions by one or more.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let can_right = self.positions[i + 1] - self.positions[i] > 1.0;
            let can_left = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && can_right) || (d <= -1.0 && can_left) {
                let sign = if d >= 0.0 { 1.0 } else { -1.0 };
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (qm, qi, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, ni, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        qi + sign / (np - nm)
            * ((ni - nm + sign) * (qp - qi) / (np - ni) + (np - ni - sign) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the quantile.
    ///
    /// Returns `None` before any observation. With fewer than five
    /// observations, returns the exact sample quantile of what was seen.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut seen = self.init[..self.count].to_vec();
            seen.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return Some(crate::percentile_of_sorted(&seen, self.q));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(mut v: Vec<f64>, q: f64) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        crate::percentile_of_sorted(&v, q)
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn rejects_bad_quantile() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(P2Quantile::new(0.5).value(), None);
    }

    #[test]
    fn small_counts_exact() {
        let mut e = P2Quantile::new(0.5);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(20.0);
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    fn uniform_stream_accuracy() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.gen_range(0.0..1000.0)).collect();
        for &q in &[0.5, 0.75, 0.95, 0.99] {
            let mut est = P2Quantile::new(q);
            for &s in &samples {
                est.observe(s);
            }
            let exact = exact_quantile(samples.clone(), q);
            let got = est.value().unwrap();
            // P² on a smooth distribution should land within 2% of range.
            assert!(
                (got - exact).abs() < 20.0,
                "q={q}: est {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn heavy_tail_p95_reasonable() {
        // Latency-like distribution: exponential with a few huge spikes.
        let mut rng = StdRng::seed_from_u64(11);
        let mut est = P2Quantile::new(0.95);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            let x = -10.0 * u.ln(); // Exp(mean=10)
            est.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(all, 0.95);
        let got = est.value().unwrap();
        assert!(
            (got - exact).abs() / exact < 0.10,
            "est {got} vs exact {exact}"
        );
    }

    #[test]
    fn ignores_non_finite() {
        let mut est = P2Quantile::new(0.5);
        est.observe(f64::NAN);
        assert_eq!(est.count(), 0);
        for i in 0..100 {
            est.observe(i as f64);
        }
        assert_eq!(est.count(), 100);
        assert!(est.value().unwrap().is_finite());
    }

    #[test]
    fn monotone_in_quantile() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut prev = f64::NEG_INFINITY;
        for &q in &[0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let mut est = P2Quantile::new(q);
            for &s in &samples {
                est.observe(s);
            }
            let v = est.value().unwrap();
            assert!(v >= prev - 1.0, "q={q} broke monotonicity: {v} < {prev}");
            prev = v;
        }
    }
}
