//! Property-based contracts of the placement layer: any plan the
//! planner emits must respect every node's memory budget and cover
//! every table exactly once — for both policies, over arbitrary table
//! geometries and fleet shapes.

use drs_core::{ClusterTopology, NodeId, NodeSpec};
use drs_models::{InteractionKind, ModelConfig, PoolingKind, TableConfig};
use drs_platform::CpuPlatform;
use drs_shard::{PlacementPolicy, ShardPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic sum-pooled model with `num_tables` random tables.
fn model(seed: u64, num_tables: usize) -> ModelConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let tables = (0..num_tables)
        .map(|_| {
            TableConfig::multi_hot(
                rng.gen_range(1_000..3_000_000),
                [16, 32, 64][rng.gen_range(0..3usize)],
                rng.gen_range(1..120),
            )
        })
        .collect();
    ModelConfig {
        name: "prop-shard",
        domain: "-",
        dense_input_dim: 16,
        dense_fc: vec![32, 8],
        predict_fc: vec![8, 1],
        num_tasks: 1,
        tables,
        pooling: PoolingKind::Sum,
        interaction: InteractionKind::Concat,
        attention_hidden: 0,
        gru_hidden: 0,
        sla_ms: 100.0,
        paper_bottleneck: "-",
    }
}

/// A fleet whose nodes get random memory budgets in `[lo, hi]` MB.
fn fleet(seed: u64, nodes: usize, lo_mb: u64, hi_mb: u64) -> ClusterTopology {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    ClusterTopology::new(
        (0..nodes)
            .map(|_| {
                NodeSpec::cpu_only(CpuPlatform::skylake())
                    .with_mem_bytes(rng.gen_range(lo_mb..=hi_mb) * (1 << 20))
            })
            .collect(),
    )
}

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every successful plan (a) covers each table exactly once —
    /// the assignment is total by type, and the per-node table lists
    /// partition the index set — and (b) keeps each node's resident
    /// bytes within its `mem_bytes` budget.
    #[test]
    fn plans_respect_capacity_and_cover_tables(
        seed in 0u64..500,
        num_tables in 1usize..32,
        nodes in 1usize..7,
        policy_bit in 0u8..2,
    ) {
        let cfg = model(seed, num_tables);
        let topo = fleet(seed, nodes, 200, 2_000);
        let policy = if policy_bit == 0 {
            PlacementPolicy::SizeGreedy
        } else {
            PlacementPolicy::LookupBalanced
        };
        let Ok(plan) = ShardPlan::place(&cfg, &topo, policy) else {
            // Infeasible geometry: nothing to check — feasibility is
            // the planner's to refuse, not to fudge.
            return Ok(());
        };

        // (a) every table exactly once.
        prop_assert_eq!(plan.assignment().len(), num_tables);
        let mut seen = vec![false; num_tables];
        for n in 0..topo.len() {
            for t in plan.tables_on(NodeId(n)) {
                prop_assert!(!seen[t], "table {} placed twice", t);
                seen[t] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "a table was never placed");

        // (b) per-node bytes within budget, and totals conserved.
        let mut total = 0u64;
        for (n, spec) in topo.nodes().iter().enumerate() {
            let bytes = plan.bytes_on(NodeId(n));
            prop_assert!(
                bytes <= spec.mem_bytes,
                "node {} holds {} of {} budget", n, bytes, spec.mem_bytes
            );
            total += bytes;
        }
        prop_assert_eq!(total, cfg.embedding_bytes());

        // Derived exchange geometry stays consistent.
        let fractions: f64 = plan
            .shard_nodes()
            .iter()
            .map(|&n| plan.gather_fraction(n))
            .sum();
        prop_assert!((fractions - 1.0).abs() < 1e-9);
        for &home in &plan.shard_nodes() {
            let peers = plan.peers(home);
            prop_assert_eq!(peers, plan.shard_nodes().len() - 1);
            if peers == 0 {
                prop_assert_eq!(plan.exchange_payload_bytes_per_item(home), 0.0);
            }
        }
    }

    /// When the model genuinely exceeds the fleet's aggregate memory,
    /// placement must fail rather than overfill.
    #[test]
    fn oversubscribed_fleet_is_refused(seed in 0u64..200, nodes in 1usize..5) {
        let cfg = model(seed, 24);
        if cfg.embedding_bytes() == 0 {
            return Ok(());
        }
        // Budget the fleet strictly below the model's footprint.
        let per_node = (cfg.embedding_bytes() / nodes as u64 / 2).max(1);
        let topo = ClusterTopology::new(vec![
            NodeSpec::cpu_only(CpuPlatform::skylake())
                .with_mem_bytes(per_node);
            nodes
        ]);
        for policy in [PlacementPolicy::SizeGreedy, PlacementPolicy::LookupBalanced] {
            prop_assert!(ShardPlan::place(&cfg, &topo, policy).is_err());
        }
    }
}
