//! Embedding-table sharding: placement and exchange planning for
//! models larger than one node's memory.
//!
//! Production recommendation models are dominated by their embedding
//! tables — tens of GBs at paper scale (Section II-A), up to
//! memory-capacity-bound at Facebook scale. "Understanding
//! Capacity-Driven Scale-Out Neural Recommendation Inference" (Lui et
//! al.) shows it is *capacity*, not compute, that forces these models
//! to span nodes, and "Accelerating Recommender Systems via Hardware
//! scale-in" (Krishna & Krishna) quantifies the cross-node gather step
//! that scale-out buys you as the new bottleneck. This crate is the
//! planning layer between those two facts:
//!
//! * [`ShardPlan::place`] partitions a model's tables **table-wise**
//!   across a [`ClusterTopology`]'s nodes under each node's
//!   `mem_bytes` budget, with two [`PlacementPolicy`] choices —
//!   greedy bin-packing by table size, and a lookup-frequency-balanced
//!   packing that equalizes per-node gather traffic using the tables'
//!   access weights from `drs-models`;
//! * the resulting [`ShardPlan`] answers the questions every
//!   execution layer asks: which nodes hold shards, what fraction of
//!   the gather traffic lives where, and how many pooled bytes a
//!   query must exchange to merge at a given home node
//!   ([`ShardPlan::exchange_payload_bytes_per_item`], priced by
//!   [`drs_platform::InterconnectModel`]).
//!
//! The numeric lookup path (`drs_nn::ShardedEmbeddingSet`), the
//! discrete-event simulator (`drs_sim::Simulation::with_shard_plan`),
//! and the serving cluster (`drs_server::Cluster::new_sharded`) all
//! consume a plan built here, so placement decisions are made once and
//! mean the same thing everywhere.
//!
//! # Examples
//!
//! ```
//! use drs_core::{ClusterTopology, NodeSpec};
//! use drs_models::zoo;
//! use drs_platform::CpuPlatform;
//! use drs_shard::{PlacementPolicy, ShardPlan};
//!
//! // DLRM-RMC2's tables are ~25.6 GB at paper scale: they cannot fit
//! // a 16 GiB node, but a 2-node fleet holds them.
//! let node = NodeSpec::cpu_only(CpuPlatform::skylake()).with_mem_bytes(16 << 30);
//! let one = ClusterTopology::new(vec![node]);
//! assert!(ShardPlan::place(&zoo::dlrm_rmc2(), &one, PlacementPolicy::SizeGreedy).is_err());
//!
//! let two = ClusterTopology::new(vec![node; 2]);
//! let plan = ShardPlan::place(&zoo::dlrm_rmc2(), &two, PlacementPolicy::LookupBalanced).unwrap();
//! assert_eq!(plan.shard_nodes().len(), 2);
//! let total: u64 = plan.shard_nodes().iter().map(|&n| plan.bytes_on(n)).sum();
//! assert_eq!(total, zoo::dlrm_rmc2().embedding_bytes());
//! ```

#![warn(missing_docs)]

mod plan;

pub use plan::{PlacementError, PlacementPolicy, ShardGeometry, ShardPlan};
