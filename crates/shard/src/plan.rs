//! Table placement under per-node memory budgets, and the exchange
//! geometry the resulting plan implies.

use drs_core::{ClusterTopology, NodeId};
use drs_models::ModelConfig;
use drs_platform::{CpuPlatform, InterconnectModel, ModelCost};
use std::fmt;

/// How tables are packed onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// First-fit-decreasing bin-packing by table *size*: biggest
    /// tables first, each onto the lowest-[`NodeId`] node with room.
    /// Minimizes the nodes touched, but concentrates the hot tables —
    /// and with them the gather traffic — on the early nodes.
    SizeGreedy,
    /// Balance per-node *gather traffic*: tables sorted by access
    /// weight (`lookups × dim × 4` bytes touched per scored item, from
    /// `drs-models`), each placed on the node with the least
    /// accumulated weight that still has memory room. Evens out the
    /// per-query work every shard contributes, which is what bounds
    /// the fork-join critical path.
    LookupBalanced,
}

impl PlacementPolicy {
    /// Short label for tables and figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::SizeGreedy => "size-greedy",
            PlacementPolicy::LookupBalanced => "lookup-balanced",
        }
    }
}

/// Why a placement attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A table found no node with enough remaining memory. Carries the
    /// model, the offending table, its size, and the fleet's total
    /// budget for context.
    Capacity {
        /// Model whose placement failed.
        model: &'static str,
        /// Index of the table that found no home.
        table: usize,
        /// That table's paper-scale bytes.
        table_bytes: u64,
        /// Sum of all tables' bytes.
        model_bytes: u64,
        /// Sum of all nodes' `mem_bytes`.
        fleet_bytes: u64,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Capacity {
                model,
                table,
                table_bytes,
                model_bytes,
                fleet_bytes,
            } => write!(
                f,
                "{model}: table {table} ({:.2} GB) fits no node; model needs {:.2} GB, \
                 fleet offers {:.2} GB",
                *table_bytes as f64 / 1e9,
                *model_bytes as f64 / 1e9,
                *fleet_bytes as f64 / 1e9,
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A table-wise partitioning of one model's embedding tables across a
/// cluster, produced by [`ShardPlan::place`].
///
/// Every table is assigned to exactly one node (by construction — the
/// assignment is a total map), and per-node bytes never exceed the
/// node's `mem_bytes` (tested by property). The plan also precomputes
/// the quantities serving needs per query: each shard node's share of
/// the gather traffic, and the pooled payload that must travel to a
/// merge home.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    policy: PlacementPolicy,
    /// Table `t` lives on node `assignment[t]`.
    assignment: Vec<NodeId>,
    node_count: usize,
    /// Paper-scale storage bytes per table.
    table_bytes: Vec<u64>,
    /// Gather traffic per scored item per table (the access weight).
    gather_bytes: Vec<u64>,
    /// Pooled exchange payload per scored item per table.
    pooled_bytes: Vec<u64>,
}

impl ShardPlan {
    /// Partitions `cfg`'s tables across `topology`'s nodes under each
    /// node's `mem_bytes` budget. Sizes are **paper scale**
    /// ([`drs_models::TableConfig::bytes`]) — capacity planning must
    /// reason about the real footprint even when experiments
    /// instantiate capped weights.
    ///
    /// Deterministic: ties in both sort orders break by table index,
    /// ties between equally-loaded nodes by the smaller [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if the model has no tables.
    pub fn place(
        cfg: &ModelConfig,
        topology: &ClusterTopology,
        policy: PlacementPolicy,
    ) -> Result<ShardPlan, PlacementError> {
        assert!(
            !cfg.tables.is_empty(),
            "{}: cannot shard a model without embedding tables",
            cfg.name
        );
        let table_bytes: Vec<u64> = cfg.tables.iter().map(|t| t.bytes()).collect();
        let gather_bytes: Vec<u64> = cfg
            .tables
            .iter()
            .map(|t| t.gather_bytes_per_item())
            .collect();
        let pooled_bytes: Vec<u64> = (0..cfg.tables.len())
            .map(|i| cfg.pooled_bytes_per_item(i))
            .collect();

        // Placement order: the policy's key, descending, ties by table
        // index ascending so runs are reproducible.
        let mut order: Vec<usize> = (0..cfg.tables.len()).collect();
        let key: &[u64] = match policy {
            PlacementPolicy::SizeGreedy => &table_bytes,
            PlacementPolicy::LookupBalanced => &gather_bytes,
        };
        order.sort_by_key(|&t| (std::cmp::Reverse(key[t]), t));

        let mut free: Vec<u64> = topology.nodes().iter().map(|n| n.mem_bytes).collect();
        let mut load: Vec<u64> = vec![0; free.len()]; // accumulated gather weight
        let mut assignment: Vec<Option<NodeId>> = vec![None; cfg.tables.len()];
        for &t in &order {
            let pick = match policy {
                PlacementPolicy::SizeGreedy => {
                    // First fit: lowest NodeId with room.
                    (0..free.len()).find(|&n| free[n] >= table_bytes[t])
                }
                PlacementPolicy::LookupBalanced => {
                    // Least-loaded by gather weight among nodes with
                    // room; id-order scan keeps ties deterministic.
                    (0..free.len())
                        .filter(|&n| free[n] >= table_bytes[t])
                        .min_by_key(|&n| (load[n], n))
                }
            };
            let Some(n) = pick else {
                return Err(PlacementError::Capacity {
                    model: cfg.name,
                    table: t,
                    table_bytes: table_bytes[t],
                    model_bytes: table_bytes.iter().sum(),
                    fleet_bytes: topology.nodes().iter().map(|n| n.mem_bytes).sum(),
                });
            };
            free[n] -= table_bytes[t];
            load[n] += gather_bytes[t];
            assignment[t] = Some(NodeId(n));
        }

        Ok(ShardPlan {
            policy,
            assignment: assignment.into_iter().map(|a| a.expect("placed")).collect(),
            node_count: topology.len(),
            table_bytes,
            gather_bytes,
            pooled_bytes,
        })
    }

    /// The policy that produced this plan.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Which node each table lives on, in table order.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// Tables covered by the plan.
    pub fn num_tables(&self) -> usize {
        self.assignment.len()
    }

    /// Nodes of the planned topology (shard-holding or not).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Nodes holding at least one table, ascending by [`NodeId`] —
    /// the set every query must reach.
    pub fn shard_nodes(&self) -> Vec<NodeId> {
        let mask = self.shard_mask();
        (0..self.node_count)
            .filter(|&n| mask[n])
            .map(NodeId)
            .collect()
    }

    /// Per-node shard presence, in [`NodeId`] order — the shape the
    /// router consumes.
    pub fn shard_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.node_count];
        for &NodeId(n) in &self.assignment {
            mask[n] = true;
        }
        mask
    }

    /// Whether the plan actually spans more than one node.
    pub fn is_sharded(&self) -> bool {
        self.shard_nodes().len() > 1
    }

    /// Global table indices on `node`, ascending.
    pub fn tables_on(&self, node: NodeId) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == node)
            .map(|(t, _)| t)
            .collect()
    }

    /// Paper-scale table bytes resident on `node`.
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.assignment
            .iter()
            .zip(&self.table_bytes)
            .filter(|&(&a, _)| a == node)
            .map(|(_, &b)| b)
            .sum()
    }

    /// `node`'s share of the model's per-item gather traffic, in
    /// `[0, 1]` — the scale factor for its partial-request service
    /// time ([`drs_platform::ModelCost::shard_gather_request_us`]).
    pub fn gather_fraction(&self, node: NodeId) -> f64 {
        let total: u64 = self.gather_bytes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let local: u64 = self
            .assignment
            .iter()
            .zip(&self.gather_bytes)
            .filter(|&(&a, _)| a == node)
            .map(|(_, &g)| g)
            .sum();
        local as f64 / total as f64
    }

    /// Pooled partial bytes per scored item that must travel to `home`
    /// from the other shards — the exchange payload priced by
    /// [`drs_platform::InterconnectModel::exchange_us`].
    pub fn exchange_payload_bytes_per_item(&self, home: NodeId) -> f64 {
        self.assignment
            .iter()
            .zip(&self.pooled_bytes)
            .filter(|&(&a, _)| a != home)
            .map(|(_, &p)| p as f64)
            .sum()
    }

    /// Remote shard peers a query merging at `home` gathers from.
    pub fn peers(&self, home: NodeId) -> usize {
        let nodes = self.shard_nodes();
        nodes.len() - usize::from(nodes.contains(&home))
    }

    /// The table → dense-shard-index map for
    /// `drs_nn::ShardedEmbeddingSet::new`: shard `i` is the `i`-th
    /// shard-holding node in [`NodeId`] order.
    pub fn dense_assignment(&self) -> Vec<usize> {
        let nodes = self.shard_nodes();
        self.assignment
            .iter()
            .map(|a| nodes.iter().position(|n| n == a).expect("shard node"))
            .collect()
    }

    /// Precomputes the per-node serving geometry of this plan over a
    /// fabric — the flat vectors a serving loop indexes per query.
    pub fn geometry(&self, net: InterconnectModel) -> ShardGeometry {
        let n = self.node_count;
        ShardGeometry {
            shard_nodes: self.shard_nodes().iter().map(|&NodeId(i)| i).collect(),
            gather_fraction: (0..n).map(|i| self.gather_fraction(NodeId(i))).collect(),
            peers: (0..n).map(|i| self.peers(NodeId(i))).collect(),
            payload_per_item: (0..n)
                .map(|i| self.exchange_payload_bytes_per_item(NodeId(i)))
                .collect(),
            net,
        }
    }

    /// One-line description for tables and logs.
    pub fn summary(&self) -> String {
        let nodes = self.shard_nodes();
        let per_node: Vec<String> = nodes
            .iter()
            .map(|&n| {
                format!(
                    "{n}:{:.1}GB/{:.0}%",
                    self.bytes_on(n) as f64 / 1e9,
                    100.0 * self.gather_fraction(n)
                )
            })
            .collect();
        format!(
            "{} over {} nodes [{}]",
            self.policy.label(),
            nodes.len(),
            per_node.join(" ")
        )
    }
}

/// The per-node serving geometry of a [`ShardPlan`] over one fabric,
/// precomputed once so serving loops index flat vectors per query.
/// Both the discrete-event simulator and the serving cluster consume
/// this one type, so the exchange composition cannot drift between
/// execution layers.
#[derive(Debug, Clone)]
pub struct ShardGeometry {
    /// Shard-holding node indices, ascending — the fan-out set.
    shard_nodes: Vec<usize>,
    /// Per-node share of the model's gather traffic.
    gather_fraction: Vec<f64>,
    /// Per-home remote peers to gather from.
    peers: Vec<usize>,
    /// Per-home pooled payload bytes per item crossing the fabric.
    payload_per_item: Vec<f64>,
    net: InterconnectModel,
}

impl ShardGeometry {
    /// Shard-holding node indices, ascending — every query fans a
    /// gather partial to each of these.
    pub fn shard_nodes(&self) -> &[usize] {
        &self.shard_nodes
    }

    /// `node`'s share of the model's gather traffic.
    pub fn gather_fraction(&self, node: usize) -> f64 {
        self.gather_fraction[node]
    }

    /// Cross-node exchange time for a query of `size` items merging at
    /// `home`, microseconds — zero when the plan has no remote peers.
    pub fn exchange_us(&self, home: usize, size: u32) -> f64 {
        self.net
            .exchange_us(self.peers[home], self.payload_per_item[home] * size as f64)
    }

    /// Full merge delay for a query of `size` items at `home`,
    /// microseconds: the cross-node exchange plus the dense tail
    /// (interaction + predictor stacks) the home runs on the merged
    /// features.
    pub fn merge_delay_us(
        &self,
        cost: &ModelCost,
        cpu: &CpuPlatform,
        home: usize,
        size: u32,
    ) -> f64 {
        self.exchange_us(home, size) + cost.dense_tail_us(cpu, size as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_core::NodeSpec;
    use drs_models::zoo;

    fn fleet(n: usize, gib: u64) -> ClusterTopology {
        ClusterTopology::new(vec![
            NodeSpec::cpu_only(CpuPlatform::skylake())
                .with_mem_bytes(gib << 30);
            n
        ])
    }

    #[test]
    fn rmc2_needs_two_16gib_nodes() {
        let cfg = zoo::dlrm_rmc2(); // 40 x 5M x 32 x 4B = 25.6 GB
        let err = ShardPlan::place(&cfg, &fleet(1, 16), PlacementPolicy::SizeGreedy).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("DLRM-RMC2"), "{msg}");
        let plan = ShardPlan::place(&cfg, &fleet(2, 16), PlacementPolicy::SizeGreedy).unwrap();
        assert!(plan.is_sharded());
        assert_eq!(plan.shard_nodes(), vec![NodeId(0), NodeId(1)]);
        let total: u64 = (0..2).map(|n| plan.bytes_on(NodeId(n))).sum();
        assert_eq!(total, cfg.embedding_bytes());
    }

    #[test]
    fn capacity_respected_on_every_node() {
        let cfg = zoo::dlrm_rmc2();
        for policy in [PlacementPolicy::SizeGreedy, PlacementPolicy::LookupBalanced] {
            let topo = fleet(4, 8);
            let plan = ShardPlan::place(&cfg, &topo, policy).unwrap();
            for (n, spec) in topo.nodes().iter().enumerate() {
                assert!(
                    plan.bytes_on(NodeId(n)) <= spec.mem_bytes,
                    "{policy:?} overfills node {n}"
                );
            }
        }
    }

    #[test]
    fn lookup_balanced_evens_gather_fractions() {
        // RMC2's 40 identical tables over 4 roomy nodes: the balanced
        // policy splits the gather traffic evenly; size-greedy
        // first-fit crams everything onto node 0.
        let cfg = zoo::dlrm_rmc2();
        let topo = fleet(4, 32);
        let bal = ShardPlan::place(&cfg, &topo, PlacementPolicy::LookupBalanced).unwrap();
        for n in 0..4 {
            let f = bal.gather_fraction(NodeId(n));
            assert!((f - 0.25).abs() < 0.01, "node {n} fraction {f}");
        }
        let greedy = ShardPlan::place(&cfg, &topo, PlacementPolicy::SizeGreedy).unwrap();
        assert!(
            greedy.gather_fraction(NodeId(0)) > 0.9,
            "first-fit concentrates on node 0"
        );
        assert!(!greedy.is_sharded());
    }

    #[test]
    fn exchange_geometry() {
        let cfg = zoo::dlrm_rmc2();
        let plan = ShardPlan::place(&cfg, &fleet(4, 8), PlacementPolicy::LookupBalanced).unwrap();
        assert_eq!(plan.shard_nodes().len(), 4);
        let home = NodeId(0);
        assert_eq!(plan.peers(home), 3);
        // Sum pooling: every remote table ships one 32-dim f32 row per
        // item. 30 remote tables x 128 bytes.
        let remote_tables = 40 - plan.tables_on(home).len();
        assert_eq!(
            plan.exchange_payload_bytes_per_item(home),
            (remote_tables * 32 * 4) as f64
        );
        // Every shard node sees the same peer count in a full spread.
        assert_eq!(plan.peers(NodeId(3)), 3);
        // Gather fractions over shard nodes sum to 1.
        let sum: f64 = plan
            .shard_nodes()
            .iter()
            .map(|&n| plan.gather_fraction(n))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_assignment_matches_shard_order() {
        let cfg = zoo::dlrm_rmc1(); // 10 tables, 6.4 GB
        let plan = ShardPlan::place(&cfg, &fleet(3, 3), PlacementPolicy::LookupBalanced).unwrap();
        let dense = plan.dense_assignment();
        assert_eq!(dense.len(), 10);
        let nodes = plan.shard_nodes();
        for (t, &d) in dense.iter().enumerate() {
            assert_eq!(nodes[d], plan.assignment()[t]);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let cfg = zoo::din();
        let a = ShardPlan::place(&cfg, &fleet(4, 32), PlacementPolicy::LookupBalanced).unwrap();
        let b = ShardPlan::place(&cfg, &fleet(4, 32), PlacementPolicy::LookupBalanced).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_node_plan_has_no_exchange() {
        let cfg = zoo::ncf();
        let plan = ShardPlan::place(&cfg, &fleet(1, 64), PlacementPolicy::SizeGreedy).unwrap();
        assert!(!plan.is_sharded());
        assert_eq!(plan.peers(NodeId(0)), 0);
        assert_eq!(plan.exchange_payload_bytes_per_item(NodeId(0)), 0.0);
        assert_eq!(plan.gather_fraction(NodeId(0)), 1.0);
    }

    #[test]
    fn geometry_mirrors_the_plan() {
        let cfg = zoo::dlrm_rmc2();
        let plan = ShardPlan::place(&cfg, &fleet(4, 8), PlacementPolicy::LookupBalanced).unwrap();
        let geo = plan.geometry(InterconnectModel::datacenter_100g());
        assert_eq!(geo.shard_nodes(), &[0, 1, 2, 3]);
        for n in 0..4 {
            assert_eq!(geo.gather_fraction(n), plan.gather_fraction(NodeId(n)));
        }
        // Exchange scales with query size; merge adds the dense tail.
        let cost = ModelCost::new(&cfg);
        let cpu = CpuPlatform::skylake();
        assert!(geo.exchange_us(0, 200) > geo.exchange_us(0, 10));
        assert!(
            geo.merge_delay_us(&cost, &cpu, 0, 64)
                > geo.exchange_us(0, 64) + 0.9 * cost.dense_tail_us(&cpu, 64)
        );
        // A single-node plan has a zero exchange but a real dense tail.
        let single = ShardPlan::place(&cfg, &fleet(1, 64), PlacementPolicy::SizeGreedy).unwrap();
        let sgeo = single.geometry(InterconnectModel::datacenter_100g());
        assert_eq!(sgeo.exchange_us(0, 500), 0.0);
        assert!(sgeo.merge_delay_us(&cost, &cpu, 0, 500) > 0.0);
    }

    #[test]
    fn summary_is_informative() {
        let cfg = zoo::dlrm_rmc2();
        let plan = ShardPlan::place(&cfg, &fleet(2, 16), PlacementPolicy::LookupBalanced).unwrap();
        let s = plan.summary();
        assert!(s.contains("lookup-balanced"), "{s}");
        assert!(s.contains("2 nodes"), "{s}");
    }
}
