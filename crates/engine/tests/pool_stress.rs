//! Concurrency stress gate for the shared engine pool.
//!
//! Oversubscribes the worker pool (worker count > physical cores),
//! submits from several jittering producer threads, and asserts that
//! the *completion set* — and the predictions themselves — are
//! identical across runs. Thread interleaving may reorder completions;
//! it must never lose, duplicate, or corrupt one. This is the
//! invariant the real-vs-virtual cross-validation tests quietly stand
//! on.

use drs_engine::{EngineRequest, InferenceEngine};
use drs_models::{zoo, BatchInputs, ModelScale, RecModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn tiny(cfg: &drs_models::ModelConfig, seed: u64) -> Arc<RecModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(RecModel::instantiate(cfg, ModelScale::tiny(), &mut rng))
}

fn oversubscribed() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    cores * 2
}

/// One full submit-and-drain cycle: `SUBMITTERS` producer threads push
/// the prebuilt requests with randomized jitter, the main thread
/// drains every completion. Returns `query_id -> ctr bit patterns`.
fn run_once(
    models: &[Arc<RecModel>],
    inputs: &[(u64, usize, BatchInputs)],
    jitter_seed: u64,
) -> BTreeMap<u64, Vec<u32>> {
    const SUBMITTERS: usize = 4;
    let engine = InferenceEngine::start_multi(models.to_vec(), oversubscribed());
    std::thread::scope(|scope| {
        for (s, chunk) in inputs.chunks(inputs.len().div_ceil(SUBMITTERS)).enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(jitter_seed ^ (s as u64) << 17);
                for (qid, model, batch) in chunk {
                    // Randomized submit jitter: vary the interleaving
                    // between producers and the oversubscribed pool.
                    if rng.gen_bool(0.5) {
                        std::thread::sleep(Duration::from_micros(rng.gen_range(0..80)));
                    } else {
                        std::thread::yield_now();
                    }
                    engine.submit(EngineRequest::forward_for(*qid, *model, batch.clone()));
                }
            });
        }
        let mut done = BTreeMap::new();
        for _ in 0..inputs.len() {
            let c = engine.completions().recv().expect("pool stays alive");
            let bits: Vec<u32> = c.ctrs.iter().map(|p| p.to_bits()).collect();
            assert!(
                done.insert(c.query_id, bits).is_none(),
                "query {} completed twice",
                c.query_id
            );
        }
        done
    })
}

#[test]
fn oversubscribed_pool_completions_are_run_invariant() {
    let models = [tiny(&zoo::ncf(), 11), tiny(&zoo::wide_and_deep(), 12)];
    // Prebuild every request once so each run submits bit-identical
    // work: any cross-run difference is the pool's fault.
    let mut rng = StdRng::seed_from_u64(13);
    let inputs: Vec<(u64, usize, BatchInputs)> = (0..96u64)
        .map(|qid| {
            let m = (qid % 2) as usize;
            let size = rng.gen_range(1..8usize);
            (qid, m, models[m].generate_inputs(size, &mut rng))
        })
        .collect();

    let first = run_once(&models, &inputs, 0xA1CE);
    assert_eq!(first.len(), inputs.len(), "every submission completes");
    for (run, seed) in [(2u32, 0xB0B), (3, 0xC0FFEE)] {
        let again = run_once(&models, &inputs, seed);
        assert_eq!(
            again, first,
            "run {run}: completion set or prediction bits diverged under jitter"
        );
    }
}

/// Backpressure under oversubscription: a bounded queue with many
/// producers must refuse excess work without losing any accepted
/// request.
#[test]
fn bounded_queue_never_loses_accepted_work() {
    let models = [tiny(&zoo::ncf(), 21)];
    let mut rng = StdRng::seed_from_u64(22);
    let batch = models[0].generate_inputs(4, &mut rng);
    let engine =
        InferenceEngine::start(Arc::clone(&models[0]), oversubscribed()).with_queue_bound(8);
    let accepted = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|s| {
                let engine = &engine;
                let batch = &batch;
                scope.spawn(move || {
                    let mut ok = Vec::new();
                    for i in 0..64u64 {
                        let qid = s * 1000 + i;
                        if engine
                            .try_submit(EngineRequest::forward(qid, batch.clone()))
                            .is_ok()
                        {
                            ok.push(qid);
                        }
                        std::thread::yield_now();
                    }
                    ok
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("submitter"));
        }
        all
    });
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..accepted.len() {
        seen.insert(engine.completions().recv().expect("pool alive").query_id);
    }
    let expected: std::collections::BTreeSet<u64> = accepted.iter().copied().collect();
    assert_eq!(seen, expected, "accepted work must complete exactly once");
    engine.shutdown();
}
