//! Open-loop serving: real-time arrival pacing on the real engine.
//!
//! [`crate::serve_closed_loop`] measures peak throughput by keeping the
//! worker pool saturated; this module instead *paces* submissions to
//! each query's arrival timestamp — the actual serving discipline of
//! Figure 8, where latency includes genuine queueing behind earlier
//! queries. Useful for validating the simulator's queueing behaviour
//! against physical execution at small scale.

use crate::pool::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_core::assert_nonempty_queries;
use drs_metrics::{LatencyRecorder, LatencySummary, ThroughputMeter};
use drs_models::RecModel;
use drs_query::{split_query, Query};
use drs_telemetry::{NoopSink, QuerySpan, Stage, TraceSink, STAGE_COUNT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters for [`serve_open_loop`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOptions {
    /// Worker threads.
    pub workers: usize,
    /// Per-request batch size.
    pub max_batch: u32,
    /// Seed for synthetic inputs.
    pub seed: u64,
    /// Speed-up factor applied to arrival timestamps (2.0 replays a
    /// trace at twice real time). Must be positive.
    pub time_scale: f64,
}

impl OpenLoopOptions {
    /// Real-time pacing with the given workers and batch size.
    pub fn new(workers: usize, max_batch: u32, seed: u64) -> Self {
        OpenLoopOptions {
            workers,
            max_batch,
            seed,
            time_scale: 1.0,
        }
    }
}

/// Results of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// End-to-end latency per query: arrival → last part finished
    /// (includes queueing behind earlier queries).
    pub latency: LatencySummary,
    /// Queries completed per wall-clock second.
    pub qps: f64,
    /// Items scored per wall-clock second.
    pub items_per_s: f64,
    /// Wall-clock duration, seconds.
    pub elapsed_s: f64,
}

/// Serves timestamped queries at their arrival times on a fresh worker
/// pool, measuring true end-to-end latency.
///
/// Submission happens on the calling thread: it sleeps until each
/// query's (scaled) arrival time, splits it, and enqueues the parts;
/// completions are drained concurrently between submissions.
///
/// # Panics
///
/// Panics if `queries` is empty or options are degenerate.
pub fn serve_open_loop(
    model: Arc<RecModel>,
    queries: &[Query],
    opts: OpenLoopOptions,
) -> OpenLoopReport {
    serve_open_loop_traced(model, queries, opts, &mut NoopSink)
}

/// [`serve_open_loop`] with one wall-clock [`QuerySpan`] per query
/// recorded into `sink`: the engine's pure service time of the query's
/// *last* part becomes [`Stage::EngineService`] and everything else —
/// channel queueing, worker contention, earlier parts — becomes
/// [`Stage::QueueWait`], so the two stages sum to the recorded
/// end-to-end latency exactly. Span clocks are nanosecond offsets from
/// the run's start. With [`NoopSink`] this is exactly
/// `serve_open_loop`.
///
/// # Panics
///
/// Panics if `queries` is empty or options are degenerate.
pub fn serve_open_loop_traced<S: TraceSink>(
    model: Arc<RecModel>,
    queries: &[Query],
    opts: OpenLoopOptions,
    sink: &mut S,
) -> OpenLoopReport {
    assert_nonempty_queries(queries);
    assert!(opts.time_scale > 0.0, "time scale must be positive");
    let engine = InferenceEngine::start(Arc::clone(&model), opts.workers);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let start = Instant::now();
    let base_arrival = queries[0].arrival_s;
    let mut parts_left: HashMap<u64, u32> = HashMap::new();
    let mut arrived_at: HashMap<u64, Instant> = HashMap::new();
    let mut tenant_of: HashMap<u64, usize> = HashMap::new();
    let mut latency = LatencyRecorder::with_capacity(queries.len());
    let mut meter = ThroughputMeter::new();
    let mut outstanding_requests: usize = 0;

    let absorb = |done: EngineCompletion,
                  parts_left: &mut HashMap<u64, u32>,
                  latency: &mut LatencyRecorder,
                  meter: &mut ThroughputMeter,
                  arrived_at: &HashMap<u64, Instant>,
                  tenant_of: &HashMap<u64, usize>,
                  sink: &mut S| {
        let left = parts_left.get_mut(&done.query_id).expect("known query");
        *left -= 1;
        if *left == 0 {
            let total = arrived_at[&done.query_id].elapsed();
            latency.record_duration(total);
            meter.record_query(0);
            if S::ENABLED {
                let arrival_ns = arrived_at[&done.query_id].duration_since(start).as_nanos() as u64;
                let total_ns = total.as_nanos() as u64;
                let service_ns = (done.service.as_nanos() as u64).min(total_ns);
                let mut stages = [0u64; STAGE_COUNT];
                stages[Stage::QueueWait.index()] = total_ns - service_ns;
                stages[Stage::EngineService.index()] = service_ns;
                sink.record(&QuerySpan {
                    query_id: done.query_id,
                    tenant: tenant_of[&done.query_id],
                    node: 0,
                    arrival_ns,
                    end_ns: arrival_ns + total_ns,
                    stages,
                });
            }
        }
    };

    for q in queries {
        // Sleep until this query's scaled arrival offset.
        let due = Duration::from_secs_f64((q.arrival_s - base_arrival) / opts.time_scale);
        while start.elapsed() < due {
            // Drain completions while waiting so the channel never
            // backs up.
            match engine
                .completions()
                .recv_timeout(due.saturating_sub(start.elapsed()))
            {
                Ok(done) => {
                    outstanding_requests -= 1;
                    absorb(
                        done,
                        &mut parts_left,
                        &mut latency,
                        &mut meter,
                        &arrived_at,
                        &tenant_of,
                        sink,
                    );
                }
                Err(_) => break, // timed out: submission is due
            }
        }
        arrived_at.insert(q.id, Instant::now());
        if S::ENABLED {
            tenant_of.insert(q.id, q.tenant.index());
        }
        let parts = split_query(q.size, opts.max_batch);
        parts_left.insert(q.id, parts.len() as u32);
        meter.record_completion(); // count items on submit
        for batch in parts {
            let inputs = model.generate_inputs(batch as usize, &mut rng);
            engine.submit(EngineRequest::forward(q.id, inputs));
            outstanding_requests += 1;
        }
    }

    // Drain the tail.
    for _ in 0..outstanding_requests {
        let done = engine.completions().recv().expect("workers alive");
        absorb(
            done,
            &mut parts_left,
            &mut latency,
            &mut meter,
            &arrived_at,
            &tenant_of,
            sink,
        );
    }
    engine.shutdown();

    let elapsed_s = start.elapsed().as_secs_f64();
    let items: u64 = queries.iter().map(|q| q.size as u64).sum();
    OpenLoopReport {
        latency: latency.summary(),
        qps: queries.len() as f64 / elapsed_s,
        items_per_s: items as f64 / elapsed_s,
        elapsed_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};
    use drs_query::{ArrivalProcess, QueryGenerator, SizeDistribution};

    fn model() -> Arc<RecModel> {
        let mut rng = StdRng::seed_from_u64(3);
        Arc::new(RecModel::instantiate(
            &zoo::ncf(),
            ModelScale::tiny(),
            &mut rng,
        ))
    }

    fn queries(rate: f64, n: usize) -> Vec<Query> {
        QueryGenerator::new(ArrivalProcess::poisson(rate), SizeDistribution::Fixed(8), 5)
            .take(n)
            .collect()
    }

    #[test]
    fn completes_all_queries_with_pacing() {
        let qs = queries(2_000.0, 40);
        let r = serve_open_loop(model(), &qs, OpenLoopOptions::new(2, 8, 1));
        assert_eq!(r.latency.count, qs.len());
        assert!(r.qps > 0.0);
        assert!(r.latency.p95_ms > 0.0);
    }

    #[test]
    fn pacing_stretches_the_run() {
        // 20 queries at 100 QPS span ~0.2 s of arrivals; open-loop
        // elapsed time must cover that span (closed-loop would finish
        // in milliseconds).
        let qs = queries(100.0, 20);
        let span = qs.last().unwrap().arrival_s - qs[0].arrival_s;
        let r = serve_open_loop(model(), &qs, OpenLoopOptions::new(2, 8, 2));
        assert!(
            r.elapsed_s >= span * 0.9,
            "elapsed {} vs arrival span {span}",
            r.elapsed_s
        );
    }

    #[test]
    fn time_scale_compresses_wall_clock() {
        let qs = queries(100.0, 20);
        let slow = serve_open_loop(model(), &qs, OpenLoopOptions::new(2, 8, 3));
        let mut fast_opts = OpenLoopOptions::new(2, 8, 3);
        fast_opts.time_scale = 10.0;
        let fast = serve_open_loop(model(), &qs, fast_opts);
        assert!(
            fast.elapsed_s < slow.elapsed_s / 2.0,
            "fast {} vs slow {}",
            fast.elapsed_s,
            slow.elapsed_s
        );
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_rejected() {
        let _ = serve_open_loop(model(), &[], OpenLoopOptions::new(1, 8, 0));
    }
}
