//! Closed-loop serving of a query stream on the real engine.

use crate::pool::{EngineCompletion, EngineRequest, InferenceEngine};
use drs_metrics::{LatencyRecorder, LatencySummary};
use drs_models::RecModel;
use drs_nn::OpProfiler;
use drs_query::split_query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Parameters for [`serve_closed_loop`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads.
    pub workers: usize,
    /// Per-request batch size (queries larger than this are split).
    pub max_batch: u32,
    /// Maximum requests in flight; the loop keeps the pipe this full.
    pub max_in_flight: usize,
    /// Seed for synthetic inputs.
    pub seed: u64,
}

impl ServeOptions {
    /// Sensible defaults: `workers` threads, 2× workers in flight.
    pub fn new(workers: usize, max_batch: u32, seed: u64) -> Self {
        ServeOptions {
            workers,
            max_batch,
            max_in_flight: workers * 2,
            seed,
        }
    }
}

/// Results of a closed-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Queries served per second.
    pub qps: f64,
    /// Candidate items scored per second.
    pub items_per_s: f64,
    /// Per-query latency (first part submitted → last part finished).
    pub latency: LatencySummary,
    /// Merged per-operator execution profile across all requests.
    pub profile: OpProfiler,
}

/// Serves `query_sizes` through a fresh worker pool in closed loop:
/// the submission window stays `max_in_flight` deep, so the engine runs
/// at full throughput while per-query latency (queueing included) is
/// recorded.
///
/// # Panics
///
/// Panics if `query_sizes` is empty or options are degenerate.
pub fn serve_closed_loop(
    model: Arc<RecModel>,
    query_sizes: &[u32],
    opts: ServeOptions,
) -> ServeReport {
    assert!(!query_sizes.is_empty(), "no queries to serve");
    assert!(opts.max_in_flight > 0, "need a submission window");
    let engine = InferenceEngine::start(Arc::clone(&model), opts.workers);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Pre-split queries into request descriptors.
    struct Pending {
        qid: u64,
        batch: u32,
    }
    let mut todo: Vec<Pending> = Vec::new();
    let mut parts_left: HashMap<u64, u32> = HashMap::new();
    for (qid, &size) in query_sizes.iter().enumerate() {
        let parts = split_query(size, opts.max_batch);
        parts_left.insert(qid as u64, parts.len() as u32);
        for batch in parts {
            todo.push(Pending {
                qid: qid as u64,
                batch,
            });
        }
    }
    let total_requests = todo.len();
    let mut next = 0usize;

    let start = Instant::now();
    let mut first_submit: HashMap<u64, Instant> = HashMap::new();
    let mut latency = LatencyRecorder::with_capacity(query_sizes.len());
    let mut profile = OpProfiler::new();
    let mut items: u64 = 0;

    let submit_one = |engine: &InferenceEngine,
                      next: &mut usize,
                      rng: &mut StdRng,
                      first_submit: &mut HashMap<u64, Instant>| {
        if *next >= todo.len() {
            return false;
        }
        let p = &todo[*next];
        *next += 1;
        first_submit.entry(p.qid).or_insert_with(Instant::now);
        let inputs = model.generate_inputs(p.batch as usize, rng);
        engine.submit(EngineRequest::forward(p.qid, inputs));
        true
    };

    // Prime the window.
    for _ in 0..opts.max_in_flight {
        if !submit_one(&engine, &mut next, &mut rng, &mut first_submit) {
            break;
        }
    }

    for _ in 0..total_requests {
        let done: EngineCompletion = engine.completions().recv().expect("workers alive");
        profile.merge(&done.profile);
        items += done.batch as u64;
        let left = parts_left.get_mut(&done.query_id).expect("known query");
        *left -= 1;
        if *left == 0 {
            let t0 = first_submit[&done.query_id];
            latency.record_duration(t0.elapsed());
        }
        submit_one(&engine, &mut next, &mut rng, &mut first_submit);
    }
    engine.shutdown();

    let elapsed_s = start.elapsed().as_secs_f64();
    ServeReport {
        elapsed_s,
        qps: query_sizes.len() as f64 / elapsed_s,
        items_per_s: items as f64 / elapsed_s,
        latency: latency.summary(),
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};

    fn model() -> Arc<RecModel> {
        let mut rng = StdRng::seed_from_u64(8);
        Arc::new(RecModel::instantiate(
            &zoo::dlrm_rmc1(),
            ModelScale::tiny(),
            &mut rng,
        ))
    }

    #[test]
    fn serves_every_query() {
        let sizes = vec![10, 64, 3, 120, 7, 33];
        let report = serve_closed_loop(model(), &sizes, ServeOptions::new(3, 32, 1));
        assert_eq!(report.latency.count, sizes.len());
        assert!(report.qps > 0.0);
        let total_items: u64 = sizes.iter().map(|&s| s as u64).sum();
        assert!(
            (report.items_per_s * report.elapsed_s - total_items as f64).abs() < 1.0,
            "items conserved"
        );
        assert!(report.profile.total().as_nanos() > 0);
    }

    #[test]
    fn parallel_workers_increase_throughput() {
        // With real threads this can be noisy; require only a clear win
        // on a comfortably parallel workload. On a box without enough
        // cores the win physically cannot appear, so skip.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!("skipping: needs >= 4 cores, have {cores}");
            return;
        }
        let sizes: Vec<u32> = vec![64; 48];
        let m = model();
        let r1 = serve_closed_loop(Arc::clone(&m), &sizes, ServeOptions::new(1, 64, 2));
        let r4 = serve_closed_loop(m, &sizes, ServeOptions::new(4, 64, 2));
        assert!(
            r4.items_per_s > r1.items_per_s * 1.5,
            "4 workers {} vs 1 worker {}",
            r4.items_per_s,
            r1.items_per_s
        );
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_queries_rejected() {
        let _ = serve_closed_loop(model(), &[], ServeOptions::new(1, 8, 0));
    }
}
