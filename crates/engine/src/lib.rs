//! Real multi-threaded inference serving engine.
//!
//! While `drs-sim` evaluates scheduling policies in virtual time, this
//! crate actually *executes* the recommendation models on host CPU
//! cores: worker threads pull requests from a queue, run
//! [`drs_models::RecModel::forward`], and report wall-clock latencies
//! and per-operator profiles. It is the measurement substrate behind
//! Figure 3 (operator breakdown) and the `model_inference` Criterion
//! benches, and doubles as a reference implementation of the serving
//! pipeline of Figure 8 (request queue → parallel workers → CTR
//! responses).
//!
//! # Examples
//!
//! ```
//! use drs_engine::{measure_batch_latency, profile_operators};
//! use drs_models::{zoo, ModelScale, RecModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = RecModel::instantiate(&zoo::ncf(), ModelScale::tiny(), &mut rng);
//! let lat = measure_batch_latency(&model, 8, 3, 1);
//! assert_eq!(lat.len(), 3);
//! let prof = profile_operators(&model, 8, 2, 1);
//! assert!(prof.total().as_nanos() > 0);
//! ```

#![warn(missing_docs)]

mod openloop;
mod pool;
mod serve;

pub use openloop::{serve_open_loop, serve_open_loop_traced, OpenLoopOptions, OpenLoopReport};
pub use pool::{EngineCompletion, EngineRequest, EngineWork, InferenceEngine};
pub use serve::{serve_closed_loop, ServeOptions, ServeReport};

use drs_models::RecModel;
use drs_nn::OpProfiler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Measures single-threaded forward-pass latency at a fixed batch size,
/// returning one wall-clock sample per iteration (fresh inputs each
/// time, seeded).
pub fn measure_batch_latency(
    model: &RecModel,
    batch: usize,
    iters: usize,
    seed: u64,
) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(iters);
    let mut prof = OpProfiler::new();
    for _ in 0..iters {
        let inputs = model.generate_inputs(batch, &mut rng);
        let start = Instant::now();
        let ctrs = model.forward(&inputs, &mut prof);
        out.push(start.elapsed());
        debug_assert_eq!(ctrs.len(), batch);
    }
    out
}

/// Runs `iters` forward passes at the given batch size and returns the
/// merged per-operator time profile — the Figure 3 measurement.
pub fn profile_operators(model: &RecModel, batch: usize, iters: usize, seed: u64) -> OpProfiler {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prof = OpProfiler::new();
    for _ in 0..iters {
        let inputs = model.generate_inputs(batch, &mut rng);
        let _ = model.forward(&inputs, &mut prof);
    }
    prof
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};
    use drs_nn::OpKind;

    #[test]
    fn latency_samples_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RecModel::instantiate(&zoo::dlrm_rmc1(), ModelScale::tiny(), &mut rng);
        let lat = measure_batch_latency(&model, 4, 5, 9);
        assert_eq!(lat.len(), 5);
        assert!(lat.iter().all(|d| d.as_nanos() > 0));
    }

    #[test]
    fn profiles_cover_expected_operators() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = RecModel::instantiate(&zoo::dien(), ModelScale::tiny(), &mut rng);
        let prof = profile_operators(&model, 4, 2, 11);
        assert!(
            prof.total_for(OpKind::Recurrent).as_nanos() > 0,
            "DIEN runs GRUs"
        );
        assert!(prof.total_for(OpKind::Embedding).as_nanos() > 0);
        assert!(prof.total_for(OpKind::PredictFc).as_nanos() > 0);
    }
}
