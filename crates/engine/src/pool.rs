//! The worker pool: threads executing real model forward passes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use drs_models::{BatchInputs, RecModel};
use drs_nn::{OpKind, OpProfiler, ShardPartial, ShardedEmbeddingSet};
use drs_tensor::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a worker does with a request's inputs.
#[derive(Debug)]
pub enum EngineWork {
    /// Full forward pass: embeddings plus the dense tail.
    Forward,
    /// Embedding gather for the engine's local shard only: the worker
    /// runs [`ShardedEmbeddingSet::forward_shard`] and returns the
    /// pooled partial instead of CTRs. Requires an engine started with
    /// [`InferenceEngine::start_sharded`].
    Gather,
    /// Dense tail over merged pooled partials — the sharded merge
    /// step. Carries the per-table pooled outputs gathered from the
    /// shard nodes; the worker runs
    /// [`RecModel::forward_from_pooled`] on them.
    Tail(Vec<Matrix>),
}

/// One inference request: a batch of inputs tagged with the query it
/// belongs to.
#[derive(Debug)]
pub struct EngineRequest {
    /// The query this request is a split of.
    pub query_id: u64,
    /// Which of the engine's models to run (the tenant index for
    /// multi-model pools; 0 on single-model engines).
    pub model: usize,
    /// What to execute.
    pub work: EngineWork,
    /// Batch inputs matching the engine's model geometry.
    pub inputs: BatchInputs,
}

impl EngineRequest {
    /// A full forward pass on a single-model engine.
    pub fn forward(query_id: u64, inputs: BatchInputs) -> Self {
        Self::forward_for(query_id, 0, inputs)
    }

    /// A full forward pass on model `model` of a multi-model engine.
    pub fn forward_for(query_id: u64, model: usize, inputs: BatchInputs) -> Self {
        EngineRequest {
            query_id,
            model,
            work: EngineWork::Forward,
            inputs,
        }
    }

    /// A local-shard embedding gather (sharded engines only).
    pub fn gather(query_id: u64, inputs: BatchInputs) -> Self {
        EngineRequest {
            query_id,
            model: 0,
            work: EngineWork::Gather,
            inputs,
        }
    }

    /// The dense tail over merged pooled partials.
    pub fn dense_tail(query_id: u64, inputs: BatchInputs, pooled: Vec<Matrix>) -> Self {
        EngineRequest {
            query_id,
            model: 0,
            work: EngineWork::Tail(pooled),
            inputs,
        }
    }
}

/// A finished request.
#[derive(Debug)]
pub struct EngineCompletion {
    /// The query this request belonged to.
    pub query_id: u64,
    /// The model index the request named.
    pub model: usize,
    /// Items scored in this request.
    pub batch: usize,
    /// Predicted CTRs, one per item (empty for gather requests).
    pub ctrs: Vec<f32>,
    /// The pooled partial, for gather requests only.
    pub partial: Option<ShardPartial>,
    /// Pure service time (excludes queueing).
    pub service: Duration,
    /// Per-operator breakdown of `service`.
    pub profile: OpProfiler,
}

/// A pool of worker threads serving inference requests for one model.
///
/// Requests submitted with [`InferenceEngine::submit`] are distributed
/// to idle workers through an unbounded MPMC channel; completions
/// arrive on [`InferenceEngine::completions`] in finish order.
///
/// Open-loop callers (the `drs-server` runtime) should prefer the
/// bounded path — [`InferenceEngine::with_queue_bound`] plus
/// [`InferenceEngine::try_submit`] — so a load spike surfaces as
/// backpressure at the dispatcher instead of unbounded buffering, and
/// [`InferenceEngine::try_completion`] to drain finished work without
/// blocking the submission loop.
///
/// # Examples
///
/// ```
/// use drs_engine::{EngineRequest, InferenceEngine};
/// use drs_models::{zoo, ModelScale, RecModel};
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = Arc::new(RecModel::instantiate(&zoo::ncf(), ModelScale::tiny(), &mut rng));
/// let engine = InferenceEngine::start(Arc::clone(&model), 2);
/// let inputs = model.generate_inputs(4, &mut rng);
/// engine.submit(EngineRequest::forward(0, inputs));
/// let done = engine.completions().recv().unwrap();
/// assert_eq!(done.query_id, 0);
/// assert_eq!(done.ctrs.len(), 4);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct InferenceEngine {
    tx: Option<Sender<EngineRequest>>,
    /// Observer clone of the request channel, kept only for its depth
    /// gauge (never received from).
    rx_requests: Receiver<EngineRequest>,
    rx_done: Receiver<EngineCompletion>,
    queue_bound: Option<usize>,
    /// High-water mark of the request queue, updated at each submit —
    /// the fleet-pulse `engine_peak_depth` gauge.
    peak_depth: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
}

/// Everything a worker thread needs to execute any [`EngineWork`].
struct WorkerContext {
    models: Vec<Arc<RecModel>>,
    shard: Option<(Arc<ShardedEmbeddingSet>, usize)>,
}

impl WorkerContext {
    fn execute(&self, req: EngineRequest) -> EngineCompletion {
        let mut profile = OpProfiler::new();
        let start = Instant::now();
        let mut partial = None;
        let ctrs = match req.work {
            EngineWork::Forward => self.models[req.model].forward(&req.inputs, &mut profile),
            EngineWork::Gather => {
                let (set, shard) = self
                    .shard
                    .as_ref()
                    .expect("gather request on an unsharded engine");
                partial = Some(profile.time(OpKind::Embedding, || {
                    set.forward_shard(*shard, &req.inputs.sparse)
                }));
                Vec::new()
            }
            EngineWork::Tail(pooled) => {
                self.models[req.model].forward_from_pooled(&req.inputs, pooled, &mut profile)
            }
        };
        let service = start.elapsed();
        EngineCompletion {
            query_id: req.query_id,
            model: req.model,
            batch: req.inputs.batch,
            ctrs,
            partial,
            service,
            profile,
        }
    }
}

impl InferenceEngine {
    /// Spawns `workers` threads serving `model`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn start(model: Arc<RecModel>, workers: usize) -> Self {
        Self::start_multi(vec![model], workers)
    }

    /// Spawns `workers` threads serving several co-located models from
    /// one shared request queue — the multi-tenant pool shape, where
    /// [`EngineRequest::model`] selects the tenant's model.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `models` is empty.
    pub fn start_multi(models: Vec<Arc<RecModel>>, workers: usize) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        Self::spawn(
            Arc::new(WorkerContext {
                models,
                shard: None,
            }),
            workers,
        )
    }

    /// Spawns `workers` threads serving `model` with shard `shard` of
    /// `set` resident: [`EngineWork::Gather`] requests run real
    /// partial forwards over the local tables, and
    /// [`EngineWork::Tail`] requests run the dense tail over merged
    /// partials — the two halves of sharded serving.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `shard` is out of range.
    pub fn start_sharded(
        model: Arc<RecModel>,
        set: Arc<ShardedEmbeddingSet>,
        shard: usize,
        workers: usize,
    ) -> Self {
        assert!(
            shard < set.num_shards(),
            "shard {shard} out of range ({} shards)",
            set.num_shards()
        );
        Self::spawn(
            Arc::new(WorkerContext {
                models: vec![model],
                shard: Some((set, shard)),
            }),
            workers,
        )
    }

    fn spawn(ctx: Arc<WorkerContext>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = unbounded::<EngineRequest>();
        let (tx_done, rx_done) = unbounded::<EngineCompletion>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let tx_done = tx_done.clone();
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || {
                    while let Ok(req) = rx.recv() {
                        let _ = tx_done.send(ctx.execute(req));
                    }
                })
            })
            .collect();
        InferenceEngine {
            tx: Some(tx),
            rx_requests: rx,
            rx_done,
            queue_bound: None,
            peak_depth: AtomicUsize::new(0),
            workers: handles,
        }
    }

    /// Caps the request queue at `bound` pending requests: once the
    /// depth gauge reaches the bound, [`InferenceEngine::try_submit`]
    /// refuses work instead of buffering it. ([`InferenceEngine::submit`]
    /// stays unbounded for closed-loop callers that self-limit.)
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be positive");
        self.queue_bound = Some(bound);
        self
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if called after [`InferenceEngine::shutdown`].
    pub fn submit(&self, request: EngineRequest) {
        self.tx
            .as_ref()
            .expect("engine is running")
            .send(request)
            .expect("workers alive");
        self.peak_depth
            .fetch_max(self.queue_depth(), Ordering::Relaxed);
    }

    /// Bounded submit: enqueues the request unless the pending-request
    /// queue is at the configured bound, in which case the request is
    /// handed back so the caller can hold it and exert backpressure.
    /// Without a configured bound this never refuses.
    ///
    /// # Panics
    ///
    /// Panics if called after [`InferenceEngine::shutdown`].
    pub fn try_submit(&self, request: EngineRequest) -> Result<(), EngineRequest> {
        if let Some(bound) = self.queue_bound {
            if self.queue_depth() >= bound {
                return Err(request);
            }
        }
        self.submit(request);
        Ok(())
    }

    /// Requests accepted but not yet picked up by a worker — the
    /// backpressure gauge behind [`InferenceEngine::try_submit`].
    pub fn queue_depth(&self) -> usize {
        self.rx_requests.len()
    }

    /// The configured request-queue bound, if any.
    pub fn queue_bound(&self) -> Option<usize> {
        self.queue_bound
    }

    /// The deepest the request queue has been since the engine
    /// started, measured just after each submit. A racing worker can
    /// dequeue before the measurement, so the mark is a lower bound on
    /// the true instantaneous peak — fine for a trend gauge.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_depth.load(Ordering::Relaxed)
    }

    /// Non-blocking completion drain: returns a finished request if one
    /// is ready, `None` otherwise. Open-loop serving interleaves this
    /// with arrival pacing so the completion channel never backs up
    /// while the submitter sleeps.
    pub fn try_completion(&self) -> Option<EngineCompletion> {
        self.rx_done.try_recv().ok()
    }

    /// The completion channel (finish order, not submit order).
    pub fn completions(&self) -> &Receiver<EngineCompletion> {
        &self.rx_done
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops accepting work, drains the workers, and joins them.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on recv Err
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> Arc<RecModel> {
        let mut rng = StdRng::seed_from_u64(5);
        Arc::new(RecModel::instantiate(
            &zoo::ncf(),
            ModelScale::tiny(),
            &mut rng,
        ))
    }

    #[test]
    fn completes_all_requests() {
        let model = tiny_model();
        let engine = InferenceEngine::start(Arc::clone(&model), 4);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 32;
        for qid in 0..n {
            engine.submit(EngineRequest::forward(
                qid,
                model.generate_inputs(3, &mut rng),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let done = engine.completions().recv().unwrap();
            assert_eq!(done.ctrs.len(), 3);
            assert!(done.ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
            assert!(done.service.as_nanos() > 0);
            seen.insert(done.query_id);
        }
        assert_eq!(seen.len(), n as usize);
        engine.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let model = tiny_model();
        let engine = InferenceEngine::start(model, 2);
        drop(engine); // must not hang or leak
    }

    #[test]
    fn bounded_submit_exerts_backpressure() {
        let model = tiny_model();
        let bound = 2;
        let engine = InferenceEngine::start(Arc::clone(&model), 1).with_queue_bound(bound);
        assert_eq!(engine.queue_bound(), Some(bound));
        let mut rng = StdRng::seed_from_u64(7);
        // A single worker runs real forward passes (reads weights and
        // computes) while submission clones a prebuilt input (a strict
        // subset of that work): pushing in a tight loop must hit the
        // bound long before the worker drains 10k batches.
        let inputs = model.generate_inputs(64, &mut rng);
        let mut accepted = 0u32;
        let mut refused = false;
        for _ in 0..10_000 {
            let req = EngineRequest::forward(accepted as u64, inputs.clone());
            match engine.try_submit(req) {
                Ok(()) => accepted += 1,
                Err(back) => {
                    // The refused request comes back intact for retry.
                    assert_eq!(back.inputs.batch, 64);
                    refused = true;
                    break;
                }
            }
            assert!(engine.queue_depth() <= bound);
        }
        assert!(refused, "bound {bound} never refused in 10k submissions");
        // Everything accepted still completes.
        let mut done = 0;
        while done < accepted {
            if engine.try_completion().is_some() {
                done += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert!(engine.try_completion().is_none());
        engine.shutdown();
    }

    #[test]
    fn unbounded_try_submit_never_refuses() {
        let model = tiny_model();
        let engine = InferenceEngine::start(Arc::clone(&model), 1);
        let mut rng = StdRng::seed_from_u64(9);
        for qid in 0..64 {
            let req = EngineRequest::forward(qid, model.generate_inputs(2, &mut rng));
            assert!(engine.try_submit(req).is_ok());
        }
        for _ in 0..64 {
            let _ = engine.completions().recv().unwrap();
        }
        engine.shutdown();
    }

    #[test]
    fn multi_model_pool_routes_requests_by_model_index() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Arc::new(RecModel::instantiate(
            &zoo::ncf(),
            ModelScale::tiny(),
            &mut rng,
        ));
        let b = Arc::new(RecModel::instantiate(
            &zoo::wide_and_deep(),
            ModelScale::tiny(),
            &mut rng,
        ));
        let engine = InferenceEngine::start_multi(vec![Arc::clone(&a), Arc::clone(&b)], 2);
        let mut rng = StdRng::seed_from_u64(12);
        engine.submit(EngineRequest::forward_for(
            0,
            0,
            a.generate_inputs(3, &mut rng),
        ));
        engine.submit(EngineRequest::forward_for(
            1,
            1,
            b.generate_inputs(5, &mut rng),
        ));
        for _ in 0..2 {
            let done = engine.completions().recv().unwrap();
            let expect = if done.model == 0 { 3 } else { 5 };
            assert_eq!(done.batch, expect);
            assert_eq!(done.ctrs.len(), expect);
            assert!(done.partial.is_none());
        }
        engine.shutdown();
    }

    #[test]
    fn sharded_gather_plus_tail_matches_full_forward() {
        // Two shards of one model behind two engines: gathering both
        // partials and running the dense tail over the merge must be
        // bit-identical to the plain forward pass on the same inputs.
        let model = {
            let mut rng = StdRng::seed_from_u64(21);
            Arc::new(RecModel::instantiate(
                &zoo::dlrm_rmc1(),
                ModelScale::tiny(),
                &mut rng,
            ))
        };
        let tables = model
            .generate_inputs(1, &mut StdRng::seed_from_u64(0))
            .sparse
            .len();
        let assignment: Vec<usize> = (0..tables).map(|t| t % 2).collect();
        let set = Arc::new(model.sharded_embeddings(&assignment));
        let engines: Vec<_> = (0..2)
            .map(|s| InferenceEngine::start_sharded(Arc::clone(&model), Arc::clone(&set), s, 1))
            .collect();
        let mut rng = StdRng::seed_from_u64(22);
        let inputs = model.generate_inputs(6, &mut rng);

        let mut partials = Vec::new();
        for e in &engines {
            e.submit(EngineRequest::gather(7, inputs.clone()));
            let done = e.completions().recv().unwrap();
            assert!(done.ctrs.is_empty(), "gather returns partials, not CTRs");
            partials.push(done.partial.expect("gather carries a partial"));
        }
        let pooled = set.merge(partials);
        engines[0].submit(EngineRequest::dense_tail(7, inputs.clone(), pooled));
        let tail = engines[0].completions().recv().unwrap();

        let expect = model.forward(&inputs, &mut OpProfiler::new());
        assert_eq!(tail.ctrs, expect, "sharded path is bit-identical");
        for e in engines {
            e.shutdown();
        }
    }

    #[test]
    #[should_panic(expected = "queue bound must be positive")]
    fn zero_bound_rejected() {
        let _ = InferenceEngine::start(tiny_model(), 1).with_queue_bound(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = InferenceEngine::start(tiny_model(), 0);
    }
}
