//! The worker pool: threads executing real model forward passes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use drs_models::{BatchInputs, RecModel};
use drs_nn::OpProfiler;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One inference request: a batch of inputs tagged with the query it
/// belongs to.
#[derive(Debug)]
pub struct EngineRequest {
    /// The query this request is a split of.
    pub query_id: u64,
    /// Batch inputs matching the engine's model geometry.
    pub inputs: BatchInputs,
}

/// A finished request.
#[derive(Debug)]
pub struct EngineCompletion {
    /// The query this request belonged to.
    pub query_id: u64,
    /// Items scored in this request.
    pub batch: usize,
    /// Predicted CTRs, one per item.
    pub ctrs: Vec<f32>,
    /// Pure service time (excludes queueing).
    pub service: Duration,
    /// Per-operator breakdown of `service`.
    pub profile: OpProfiler,
}

/// A pool of worker threads serving inference requests for one model.
///
/// Requests submitted with [`InferenceEngine::submit`] are distributed
/// to idle workers through an unbounded MPMC channel; completions
/// arrive on [`InferenceEngine::completions`] in finish order.
///
/// Open-loop callers (the `drs-server` runtime) should prefer the
/// bounded path — [`InferenceEngine::with_queue_bound`] plus
/// [`InferenceEngine::try_submit`] — so a load spike surfaces as
/// backpressure at the dispatcher instead of unbounded buffering, and
/// [`InferenceEngine::try_completion`] to drain finished work without
/// blocking the submission loop.
///
/// # Examples
///
/// ```
/// use drs_engine::{EngineRequest, InferenceEngine};
/// use drs_models::{zoo, ModelScale, RecModel};
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = Arc::new(RecModel::instantiate(&zoo::ncf(), ModelScale::tiny(), &mut rng));
/// let engine = InferenceEngine::start(Arc::clone(&model), 2);
/// let inputs = model.generate_inputs(4, &mut rng);
/// engine.submit(EngineRequest { query_id: 0, inputs });
/// let done = engine.completions().recv().unwrap();
/// assert_eq!(done.query_id, 0);
/// assert_eq!(done.ctrs.len(), 4);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct InferenceEngine {
    tx: Option<Sender<EngineRequest>>,
    /// Observer clone of the request channel, kept only for its depth
    /// gauge (never received from).
    rx_requests: Receiver<EngineRequest>,
    rx_done: Receiver<EngineCompletion>,
    queue_bound: Option<usize>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceEngine {
    /// Spawns `workers` threads serving `model`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn start(model: Arc<RecModel>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = unbounded::<EngineRequest>();
        let (tx_done, rx_done) = unbounded::<EngineCompletion>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let tx_done = tx_done.clone();
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    while let Ok(req) = rx.recv() {
                        let mut profile = OpProfiler::new();
                        let start = Instant::now();
                        let ctrs = model.forward(&req.inputs, &mut profile);
                        let service = start.elapsed();
                        let _ = tx_done.send(EngineCompletion {
                            query_id: req.query_id,
                            batch: req.inputs.batch,
                            ctrs,
                            service,
                            profile,
                        });
                    }
                })
            })
            .collect();
        InferenceEngine {
            tx: Some(tx),
            rx_requests: rx,
            rx_done,
            queue_bound: None,
            workers: handles,
        }
    }

    /// Caps the request queue at `bound` pending requests: once the
    /// depth gauge reaches the bound, [`InferenceEngine::try_submit`]
    /// refuses work instead of buffering it. ([`InferenceEngine::submit`]
    /// stays unbounded for closed-loop callers that self-limit.)
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be positive");
        self.queue_bound = Some(bound);
        self
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if called after [`InferenceEngine::shutdown`].
    pub fn submit(&self, request: EngineRequest) {
        self.tx
            .as_ref()
            .expect("engine is running")
            .send(request)
            .expect("workers alive");
    }

    /// Bounded submit: enqueues the request unless the pending-request
    /// queue is at the configured bound, in which case the request is
    /// handed back so the caller can hold it and exert backpressure.
    /// Without a configured bound this never refuses.
    ///
    /// # Panics
    ///
    /// Panics if called after [`InferenceEngine::shutdown`].
    pub fn try_submit(&self, request: EngineRequest) -> Result<(), EngineRequest> {
        if let Some(bound) = self.queue_bound {
            if self.queue_depth() >= bound {
                return Err(request);
            }
        }
        self.submit(request);
        Ok(())
    }

    /// Requests accepted but not yet picked up by a worker — the
    /// backpressure gauge behind [`InferenceEngine::try_submit`].
    pub fn queue_depth(&self) -> usize {
        self.rx_requests.len()
    }

    /// The configured request-queue bound, if any.
    pub fn queue_bound(&self) -> Option<usize> {
        self.queue_bound
    }

    /// Non-blocking completion drain: returns a finished request if one
    /// is ready, `None` otherwise. Open-loop serving interleaves this
    /// with arrival pacing so the completion channel never backs up
    /// while the submitter sleeps.
    pub fn try_completion(&self) -> Option<EngineCompletion> {
        self.rx_done.try_recv().ok()
    }

    /// The completion channel (finish order, not submit order).
    pub fn completions(&self) -> &Receiver<EngineCompletion> {
        &self.rx_done
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops accepting work, drains the workers, and joins them.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on recv Err
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> Arc<RecModel> {
        let mut rng = StdRng::seed_from_u64(5);
        Arc::new(RecModel::instantiate(
            &zoo::ncf(),
            ModelScale::tiny(),
            &mut rng,
        ))
    }

    #[test]
    fn completes_all_requests() {
        let model = tiny_model();
        let engine = InferenceEngine::start(Arc::clone(&model), 4);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 32;
        for qid in 0..n {
            engine.submit(EngineRequest {
                query_id: qid,
                inputs: model.generate_inputs(3, &mut rng),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let done = engine.completions().recv().unwrap();
            assert_eq!(done.ctrs.len(), 3);
            assert!(done.ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
            assert!(done.service.as_nanos() > 0);
            seen.insert(done.query_id);
        }
        assert_eq!(seen.len(), n as usize);
        engine.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let model = tiny_model();
        let engine = InferenceEngine::start(model, 2);
        drop(engine); // must not hang or leak
    }

    #[test]
    fn bounded_submit_exerts_backpressure() {
        let model = tiny_model();
        let bound = 2;
        let engine = InferenceEngine::start(Arc::clone(&model), 1).with_queue_bound(bound);
        assert_eq!(engine.queue_bound(), Some(bound));
        let mut rng = StdRng::seed_from_u64(7);
        // A single worker runs real forward passes (reads weights and
        // computes) while submission clones a prebuilt input (a strict
        // subset of that work): pushing in a tight loop must hit the
        // bound long before the worker drains 10k batches.
        let inputs = model.generate_inputs(64, &mut rng);
        let mut accepted = 0u32;
        let mut refused = false;
        for _ in 0..10_000 {
            let req = EngineRequest {
                query_id: accepted as u64,
                inputs: inputs.clone(),
            };
            match engine.try_submit(req) {
                Ok(()) => accepted += 1,
                Err(back) => {
                    // The refused request comes back intact for retry.
                    assert_eq!(back.inputs.batch, 64);
                    refused = true;
                    break;
                }
            }
            assert!(engine.queue_depth() <= bound);
        }
        assert!(refused, "bound {bound} never refused in 10k submissions");
        // Everything accepted still completes.
        let mut done = 0;
        while done < accepted {
            if engine.try_completion().is_some() {
                done += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert!(engine.try_completion().is_none());
        engine.shutdown();
    }

    #[test]
    fn unbounded_try_submit_never_refuses() {
        let model = tiny_model();
        let engine = InferenceEngine::start(Arc::clone(&model), 1);
        let mut rng = StdRng::seed_from_u64(9);
        for qid in 0..64 {
            let req = EngineRequest {
                query_id: qid,
                inputs: model.generate_inputs(2, &mut rng),
            };
            assert!(engine.try_submit(req).is_ok());
        }
        for _ in 0..64 {
            let _ = engine.completions().recv().unwrap();
        }
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "queue bound must be positive")]
    fn zero_bound_rejected() {
        let _ = InferenceEngine::start(tiny_model(), 1).with_queue_bound(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = InferenceEngine::start(tiny_model(), 0);
    }
}
