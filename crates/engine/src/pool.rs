//! The worker pool: threads executing real model forward passes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use drs_models::{BatchInputs, RecModel};
use drs_nn::OpProfiler;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One inference request: a batch of inputs tagged with the query it
/// belongs to.
#[derive(Debug)]
pub struct EngineRequest {
    /// The query this request is a split of.
    pub query_id: u64,
    /// Batch inputs matching the engine's model geometry.
    pub inputs: BatchInputs,
}

/// A finished request.
#[derive(Debug)]
pub struct EngineCompletion {
    /// The query this request belonged to.
    pub query_id: u64,
    /// Items scored in this request.
    pub batch: usize,
    /// Predicted CTRs, one per item.
    pub ctrs: Vec<f32>,
    /// Pure service time (excludes queueing).
    pub service: Duration,
    /// Per-operator breakdown of `service`.
    pub profile: OpProfiler,
}

/// A pool of worker threads serving inference requests for one model.
///
/// Requests submitted with [`InferenceEngine::submit`] are distributed
/// to idle workers through an unbounded MPMC channel; completions
/// arrive on [`InferenceEngine::completions`] in finish order.
///
/// # Examples
///
/// ```
/// use drs_engine::{EngineRequest, InferenceEngine};
/// use drs_models::{zoo, ModelScale, RecModel};
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = Arc::new(RecModel::instantiate(&zoo::ncf(), ModelScale::tiny(), &mut rng));
/// let engine = InferenceEngine::start(Arc::clone(&model), 2);
/// let inputs = model.generate_inputs(4, &mut rng);
/// engine.submit(EngineRequest { query_id: 0, inputs });
/// let done = engine.completions().recv().unwrap();
/// assert_eq!(done.query_id, 0);
/// assert_eq!(done.ctrs.len(), 4);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct InferenceEngine {
    tx: Option<Sender<EngineRequest>>,
    rx_done: Receiver<EngineCompletion>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceEngine {
    /// Spawns `workers` threads serving `model`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn start(model: Arc<RecModel>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = unbounded::<EngineRequest>();
        let (tx_done, rx_done) = unbounded::<EngineCompletion>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let tx_done = tx_done.clone();
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    while let Ok(req) = rx.recv() {
                        let mut profile = OpProfiler::new();
                        let start = Instant::now();
                        let ctrs = model.forward(&req.inputs, &mut profile);
                        let service = start.elapsed();
                        let _ = tx_done.send(EngineCompletion {
                            query_id: req.query_id,
                            batch: req.inputs.batch,
                            ctrs,
                            service,
                            profile,
                        });
                    }
                })
            })
            .collect();
        InferenceEngine {
            tx: Some(tx),
            rx_done,
            workers: handles,
        }
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if called after [`InferenceEngine::shutdown`].
    pub fn submit(&self, request: EngineRequest) {
        self.tx
            .as_ref()
            .expect("engine is running")
            .send(request)
            .expect("workers alive");
    }

    /// The completion channel (finish order, not submit order).
    pub fn completions(&self) -> &Receiver<EngineCompletion> {
        &self.rx_done
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops accepting work, drains the workers, and joins them.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit on recv Err
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_models::{zoo, ModelScale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> Arc<RecModel> {
        let mut rng = StdRng::seed_from_u64(5);
        Arc::new(RecModel::instantiate(
            &zoo::ncf(),
            ModelScale::tiny(),
            &mut rng,
        ))
    }

    #[test]
    fn completes_all_requests() {
        let model = tiny_model();
        let engine = InferenceEngine::start(Arc::clone(&model), 4);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 32;
        for qid in 0..n {
            engine.submit(EngineRequest {
                query_id: qid,
                inputs: model.generate_inputs(3, &mut rng),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let done = engine.completions().recv().unwrap();
            assert_eq!(done.ctrs.len(), 3);
            assert!(done.ctrs.iter().all(|p| (0.0..=1.0).contains(p)));
            assert!(done.service.as_nanos() > 0);
            seen.insert(done.query_id);
        }
        assert_eq!(seen.len(), n as usize);
        engine.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let model = tiny_model();
        let engine = InferenceEngine::start(model, 2);
        drop(engine); // must not hang or leak
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = InferenceEngine::start(tiny_model(), 0);
    }
}
