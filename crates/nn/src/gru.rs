//! Gated recurrent units for DIEN's interest-evolution layers.
//!
//! DIEN augments DIN with recurrence: user behaviors are run through GRU
//! layers, and the *interest evolution* layer uses an attention-gated
//! GRU (AUGRU) whose update gate is scaled by the relevance of each
//! behavior to the candidate item (Zhou et al., AAAI'19; Section III-A1
//! of the DeepRecSys paper). The paper's characterization shows DIEN's
//! runtime is dominated by these recurrent layers (Figure 3).

use crate::profile::{OpKind, OpProfiler};
use drs_tensor::{Activation, Matrix};
use rand::Rng;

/// A single GRU cell with input width `in_dim` and state width `hidden`.
///
/// Update rule (batch-major, `x`: `B × in_dim`, `h`: `B × hidden`):
///
/// ```text
/// z = σ(x·Wz + h·Uz + bz)
/// r = σ(x·Wr + h·Ur + br)
/// h̃ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Matrix,
    uz: Matrix,
    bz: Vec<f32>,
    wr: Matrix,
    ur: Matrix,
    br: Vec<f32>,
    wh: Matrix,
    uh: Matrix,
    bh: Vec<f32>,
}

impl GruCell {
    /// Creates a cell with Xavier-uniform weights and zero biases.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruCell {
            wz: Matrix::xavier_uniform(in_dim, hidden, rng),
            uz: Matrix::xavier_uniform(hidden, hidden, rng),
            bz: vec![0.0; hidden],
            wr: Matrix::xavier_uniform(in_dim, hidden, rng),
            ur: Matrix::xavier_uniform(hidden, hidden, rng),
            br: vec![0.0; hidden],
            wh: Matrix::xavier_uniform(in_dim, hidden, rng),
            uh: Matrix::xavier_uniform(hidden, hidden, rng),
            bh: vec![0.0; hidden],
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.wz.rows()
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.wz.cols()
    }

    /// Trainable parameters.
    pub fn param_count(&self) -> usize {
        3 * (self.in_dim() * self.hidden() + self.hidden() * self.hidden() + self.hidden())
    }

    fn gate(
        &self,
        x: &Matrix,
        h: &Matrix,
        w: &Matrix,
        u: &Matrix,
        b: &[f32],
        act: Activation,
    ) -> Matrix {
        let xw = x.matmul(w);
        let hu = h.matmul(u);
        let mut g = Matrix::sum_elementwise(&[&xw, &hu]);
        for r in 0..g.rows() {
            let row = g.row_mut(r);
            for (v, bias) in row.iter_mut().zip(b) {
                *v += bias;
            }
            act.apply_slice(row);
        }
        g
    }

    /// One timestep; `att_scale` (one weight per sample, or `None`)
    /// scales the update gate — this is the AUGRU variant used by DIEN's
    /// interest-evolution layer. Plain GRU behaviour is `att_scale =
    /// None`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn step(&self, x: &Matrix, h: &Matrix, att_scale: Option<&[f32]>) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        assert_eq!(h.cols(), self.hidden(), "state width mismatch");
        assert_eq!(x.rows(), h.rows(), "batch mismatch");
        if let Some(a) = att_scale {
            assert_eq!(a.len(), x.rows(), "one attention weight per sample");
        }
        let z = self.gate(x, h, &self.wz, &self.uz, &self.bz, Activation::Sigmoid);
        let r = self.gate(x, h, &self.wr, &self.ur, &self.br, Activation::Sigmoid);
        let rh = r.hadamard(h);
        let xw = x.matmul(&self.wh);
        let rhu = rh.matmul(&self.uh);
        let mut cand = Matrix::sum_elementwise(&[&xw, &rhu]);
        for row_i in 0..cand.rows() {
            let row = cand.row_mut(row_i);
            for (v, bias) in row.iter_mut().zip(&self.bh) {
                *v += bias;
            }
            Activation::Tanh.apply_slice(row);
        }
        let mut out = Matrix::zeros(h.rows(), self.hidden());
        for b in 0..h.rows() {
            let scale = att_scale.map_or(1.0, |a| a[b]);
            for j in 0..self.hidden() {
                let zj = scale * z.get(b, j);
                out.set(b, j, (1.0 - zj) * h.get(b, j) + zj * cand.get(b, j));
            }
        }
        out
    }
}

impl GruCell {
    /// Runs a plain GRU over a sample-major sequence, returning the
    /// hidden state at **every** timestep as a `(B·seq) × hidden` matrix
    /// (same layout as the input).
    ///
    /// DIEN's *interest extraction* layer needs all intermediate states:
    /// they become the inputs to the attention-gated AUGRU layer above
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `seq == 0` or `xs.rows()` is not a multiple of `seq`.
    pub fn forward_all(&self, xs: &Matrix, seq: usize, prof: &mut OpProfiler) -> Matrix {
        assert!(seq > 0, "empty sequence");
        assert_eq!(xs.rows() % seq, 0, "rows must be batch × seq");
        let batch = xs.rows() / seq;
        prof.time(OpKind::Recurrent, || {
            let mut h = Matrix::zeros(batch, self.hidden());
            let mut xt = Matrix::zeros(batch, self.in_dim());
            let mut out = Matrix::zeros(batch * seq, self.hidden());
            for t in 0..seq {
                for b in 0..batch {
                    xt.row_mut(b).copy_from_slice(xs.row(b * seq + t));
                }
                h = self.step(&xt, &h, None);
                for b in 0..batch {
                    out.row_mut(b * seq + t).copy_from_slice(h.row(b));
                }
            }
            out
        })
    }
}

/// Attention-gated GRU over a behavior sequence (DIEN's interest
/// evolution).
///
/// # Examples
///
/// ```
/// use drs_nn::{AuGru, OpProfiler};
/// use drs_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let augru = AuGru::new(8, 16, &mut rng);
/// let batch = 2;
/// let seq = 4;
/// let xs = Matrix::zeros(batch * seq, 8);
/// let scores = vec![0.25; batch * seq];
/// let mut prof = OpProfiler::new();
/// let h = augru.forward(&xs, &scores, seq, &mut prof);
/// assert_eq!((h.rows(), h.cols()), (2, 16));
/// ```
#[derive(Debug, Clone)]
pub struct AuGru {
    cell: GruCell,
}

impl AuGru {
    /// Creates an AUGRU with the given input and hidden widths.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        AuGru {
            cell: GruCell::new(in_dim, hidden, rng),
        }
    }

    /// The underlying cell.
    pub fn cell(&self) -> &GruCell {
        &self.cell
    }

    /// Runs the sequence and returns the final hidden state (`B ×
    /// hidden`).
    ///
    /// * `xs` — `(B·seq) × in_dim`, sample-major.
    /// * `scores` — `B·seq` attention weights (same layout).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or `seq == 0`.
    pub fn forward(
        &self,
        xs: &Matrix,
        scores: &[f32],
        seq: usize,
        prof: &mut OpProfiler,
    ) -> Matrix {
        assert!(seq > 0, "empty sequence");
        assert_eq!(xs.rows() % seq, 0, "rows must be batch × seq");
        let batch = xs.rows() / seq;
        assert_eq!(scores.len(), xs.rows(), "one score per (sample, step)");
        prof.time(OpKind::Recurrent, || {
            let mut h = Matrix::zeros(batch, self.cell.hidden());
            let mut xt = Matrix::zeros(batch, self.cell.in_dim());
            let mut at = vec![0.0f32; batch];
            for t in 0..seq {
                for b in 0..batch {
                    xt.row_mut(b).copy_from_slice(xs.row(b * seq + t));
                    at[b] = scores[b * seq + t];
                }
                h = self.cell.step(&xt, &h, Some(&at));
            }
            h
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell() -> GruCell {
        let mut rng = StdRng::seed_from_u64(13);
        GruCell::new(4, 6, &mut rng)
    }

    #[test]
    fn step_shapes() {
        let c = cell();
        let h = c.step(&Matrix::zeros(3, 4), &Matrix::zeros(3, 6), None);
        assert_eq!((h.rows(), h.cols()), (3, 6));
    }

    #[test]
    fn zero_attention_freezes_state() {
        // AUGRU with attention weight 0 must leave h unchanged: the
        // update gate is fully closed.
        let c = cell();
        let mut rng = StdRng::seed_from_u64(5);
        let h0 = Matrix::xavier_uniform(2, 6, &mut rng);
        let x = Matrix::xavier_uniform(2, 4, &mut rng);
        let h1 = c.step(&x, &h0, Some(&[0.0, 0.0]));
        for (a, b) in h1.as_slice().iter().zip(h0.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn state_stays_bounded() {
        // GRU state is a convex mix of h and tanh(..) ∈ (−1, 1), so with
        // h0 = 0 it remains in (−1, 1) forever.
        let c = cell();
        let mut rng = StdRng::seed_from_u64(6);
        let mut h = Matrix::zeros(2, 6);
        for _ in 0..50 {
            let x = Matrix::xavier_uniform(2, 4, &mut rng);
            h = c.step(&x, &h, None);
        }
        assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn param_count_formula() {
        let c = cell();
        assert_eq!(c.param_count(), 3 * (4 * 6 + 6 * 6 + 6));
    }

    #[test]
    fn augru_sequence_shapes_and_profiling() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = AuGru::new(4, 6, &mut rng);
        let xs = Matrix::xavier_uniform(2 * 5, 4, &mut rng);
        let scores = vec![0.2; 10];
        let mut prof = OpProfiler::new();
        let h = g.forward(&xs, &scores, 5, &mut prof);
        assert_eq!((h.rows(), h.cols()), (2, 6));
        assert_eq!(prof.count_for(OpKind::Recurrent), 1);
    }

    #[test]
    fn augru_deterministic() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(33);
            AuGru::new(3, 4, &mut rng)
        };
        let xs = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32 * 0.01);
        let scores = vec![0.5; 6];
        let mut p1 = OpProfiler::new();
        let mut p2 = OpProfiler::new();
        assert_eq!(
            mk().forward(&xs, &scores, 3, &mut p1),
            mk().forward(&xs, &scores, 3, &mut p2)
        );
    }

    #[test]
    #[should_panic(expected = "one score per")]
    fn augru_score_length_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = AuGru::new(3, 4, &mut rng);
        let mut prof = OpProfiler::new();
        let _ = g.forward(&Matrix::zeros(6, 3), &[0.1; 5], 3, &mut prof);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn step_batch_mismatch_panics() {
        let c = cell();
        let _ = c.step(&Matrix::zeros(2, 4), &Matrix::zeros(3, 6), None);
    }
}
