//! Per-operator wall-clock profiling.
//!
//! Figure 3 of the paper breaks model inference time down by Caffe2
//! operator class to show that different recommendation models are
//! bottlenecked by different operators (MLP- vs embedding- vs
//! attention-dominated). [`OpProfiler`] reproduces that instrumentation
//! for our operator library.

use std::fmt;
use std::time::{Duration, Instant};

/// Operator classes, mirroring the categories of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Dense-feature FC stack (DLRM's bottom MLP).
    DenseFc,
    /// Predictor FC stack (top MLP producing CTR logits).
    PredictFc,
    /// Embedding-table lookups and pooling (`SparseLengthsSum`).
    Embedding,
    /// Attention / local-activation units (DIN, DIEN).
    Attention,
    /// Recurrent layers (DIEN's GRUs).
    Recurrent,
    /// Feature interaction: concat / sum combining dense and sparse paths.
    Interaction,
}

impl OpKind {
    /// All operator classes in display order.
    pub const ALL: [OpKind; 6] = [
        OpKind::DenseFc,
        OpKind::PredictFc,
        OpKind::Embedding,
        OpKind::Attention,
        OpKind::Recurrent,
        OpKind::Interaction,
    ];

    /// Short display label (as used in experiment output tables).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::DenseFc => "DenseFC",
            OpKind::PredictFc => "PredictFC",
            OpKind::Embedding => "Embedding",
            OpKind::Attention => "Attention",
            OpKind::Recurrent => "Recurrent",
            OpKind::Interaction => "Interaction",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::DenseFc => 0,
            OpKind::PredictFc => 1,
            OpKind::Embedding => 2,
            OpKind::Attention => 3,
            OpKind::Recurrent => 4,
            OpKind::Interaction => 5,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates wall-clock time per [`OpKind`].
///
/// Cheap to create per-request; merge per-thread profilers with
/// [`OpProfiler::merge`] for aggregate breakdowns.
#[derive(Debug, Clone, Default)]
pub struct OpProfiler {
    totals: [Duration; 6],
    counts: [u64; 6],
}

impl OpProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing its wall-clock time to `kind`.
    #[inline]
    pub fn time<R>(&mut self, kind: OpKind, f: impl FnOnce() -> R) -> R {
        // The profiler's whole purpose is wall-clock attribution.
        let start = Instant::now(); // lint:allow(wall-clock)
        let out = f();
        self.record(kind, start.elapsed());
        out
    }

    /// Records an externally measured duration against `kind`.
    pub fn record(&mut self, kind: OpKind, d: Duration) {
        self.totals[kind.index()] += d;
        self.counts[kind.index()] += 1;
    }

    /// Total time attributed to `kind`.
    pub fn total_for(&self, kind: OpKind) -> Duration {
        self.totals[kind.index()]
    }

    /// Number of timed invocations of `kind`.
    pub fn count_for(&self, kind: OpKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total time across all operator classes.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Fraction of total time per operator class, in [`OpKind::ALL`]
    /// order. All zeros when nothing was recorded.
    pub fn fractions(&self) -> [f64; 6] {
        let total = self.total().as_secs_f64();
        let mut out = [0.0; 6];
        if total > 0.0 {
            for (o, t) in out.iter_mut().zip(&self.totals) {
                *o = t.as_secs_f64() / total;
            }
        }
        out
    }

    /// The operator class with the largest share of time, with its
    /// fraction. `None` when nothing was recorded.
    ///
    /// This drives the automatic "runtime bottleneck" classification of
    /// Table II.
    pub fn dominant(&self) -> Option<(OpKind, f64)> {
        if self.total().is_zero() {
            return None;
        }
        let fr = self.fractions();
        let (i, &f) = fr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite fractions"))
            .expect("six classes");
        Some((OpKind::ALL[i], f))
    }

    /// Adds another profiler's accumulation into this one.
    pub fn merge(&mut self, other: &OpProfiler) {
        for i in 0..6 {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Resets all accumulated time.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_to_kind() {
        let mut p = OpProfiler::new();
        let v = p.time(OpKind::Embedding, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(p.total_for(OpKind::Embedding) >= Duration::from_millis(2));
        assert_eq!(p.count_for(OpKind::Embedding), 1);
        assert_eq!(p.total_for(OpKind::DenseFc), Duration::ZERO);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut p = OpProfiler::new();
        p.record(OpKind::PredictFc, Duration::from_millis(30));
        p.record(OpKind::Embedding, Duration::from_millis(70));
        let fr = p.fractions();
        let sum: f64 = fr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((fr[OpKind::Embedding as usize] - 0.0).abs() >= 0.0); // index sanity below
        assert!((p.fractions()[2] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn dominant_class() {
        let mut p = OpProfiler::new();
        assert_eq!(p.dominant(), None);
        p.record(OpKind::Attention, Duration::from_millis(60));
        p.record(OpKind::PredictFc, Duration::from_millis(40));
        let (k, f) = p.dominant().unwrap();
        assert_eq!(k, OpKind::Attention);
        assert!((f - 0.6).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpProfiler::new();
        let mut b = OpProfiler::new();
        a.record(OpKind::Recurrent, Duration::from_millis(5));
        b.record(OpKind::Recurrent, Duration::from_millis(7));
        b.record(OpKind::Interaction, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.total_for(OpKind::Recurrent), Duration::from_millis(12));
        assert_eq!(a.count_for(OpKind::Recurrent), 2);
        assert_eq!(a.total_for(OpKind::Interaction), Duration::from_millis(1));
    }

    #[test]
    fn reset_zeroes() {
        let mut p = OpProfiler::new();
        p.record(OpKind::DenseFc, Duration::from_millis(3));
        p.reset();
        assert_eq!(p.total(), Duration::ZERO);
        assert_eq!(p.dominant(), None);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = OpKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), OpKind::ALL.len());
    }
}
