//! Table-wise sharded embedding lookup: local partial pools plus a
//! gather/merge step.
//!
//! Production embedding tables outgrow a single node's DRAM (tens of
//! GBs per model, Section II-A), so at-scale deployments partition the
//! tables across nodes and reassemble each query's pooled rows with a
//! network exchange ("Understanding Capacity-Driven Scale-Out Neural
//! Recommendation Inference", Lui et al.). This module provides the
//! numeric half of that story: a [`ShardedEmbeddingSet`] splits a
//! model's [`EmbeddingBag`]s table-wise over N shards, each shard
//! computes pooled partials for *its* tables only, and
//! [`ShardedEmbeddingSet::merge`] reassembles the full per-table
//! outputs — bit-identical to the unsharded lookup, because every
//! table's pooling runs whole on exactly one shard.
//!
//! Placement (which table goes where) is a systems decision and lives
//! in `drs-shard`; this type only needs the resulting
//! `table → shard` assignment.

use crate::embedding::EmbeddingBag;
use drs_tensor::Matrix;

/// One shard's pooled outputs: `(global table index, pooled rows)` for
/// every table the shard holds, in ascending table order.
#[derive(Debug)]
pub struct ShardPartial {
    /// Which shard produced this partial.
    pub shard: usize,
    /// Pooled output per local table, keyed by global table index.
    pub outputs: Vec<(usize, Matrix)>,
}

impl ShardPartial {
    /// Bytes this partial contributes to the gather/exchange payload
    /// (the pooled rows that must travel to the merging node).
    pub fn payload_bytes(&self) -> usize {
        self.outputs
            .iter()
            .map(|(_, m)| m.rows() * m.cols() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// A model's embedding tables partitioned table-wise across shards.
///
/// # Examples
///
/// ```
/// use drs_nn::{EmbeddingBag, Pooling, ShardedEmbeddingSet};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let bags: Vec<_> = (0..3)
///     .map(|_| EmbeddingBag::new(100, 8, Pooling::Sum, &mut rng))
///     .collect();
/// let unsharded = bags.clone();
/// // Tables 0 and 2 on shard 0, table 1 on shard 1.
/// let set = ShardedEmbeddingSet::new(bags, &[0, 1, 0]);
/// let indices = vec![
///     vec![vec![1, 2], vec![3]],
///     vec![vec![4], vec![5, 6]],
///     vec![vec![7], vec![8]],
/// ];
/// let partials: Vec<_> = (0..set.num_shards())
///     .map(|s| set.forward_shard(s, &indices))
///     .collect();
/// let merged = set.merge(partials);
/// for (t, bag) in unsharded.iter().enumerate() {
///     assert_eq!(merged[t], bag.forward_plain(&indices[t]));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEmbeddingSet {
    /// `shards[s]` holds `(global table index, bag)` pairs, ascending
    /// by table index.
    shards: Vec<Vec<(usize, EmbeddingBag)>>,
    num_tables: usize,
}

impl ShardedEmbeddingSet {
    /// Partitions `bags` table-wise: table `t` lives on shard
    /// `assignment[t]`. Shards are dense `0..num_shards` where
    /// `num_shards = max(assignment) + 1`; empty shards are allowed
    /// (they produce empty partials).
    ///
    /// # Panics
    ///
    /// Panics if `bags` is empty or `assignment.len() != bags.len()`.
    pub fn new(bags: Vec<EmbeddingBag>, assignment: &[usize]) -> Self {
        assert!(!bags.is_empty(), "a sharded set needs tables");
        assert_eq!(
            assignment.len(),
            bags.len(),
            "assignment must cover every table exactly once"
        );
        let num_shards = assignment.iter().max().map_or(0, |&m| m + 1);
        let num_tables = bags.len();
        let mut shards: Vec<Vec<(usize, EmbeddingBag)>> = vec![Vec::new(); num_shards];
        for (t, (bag, &s)) in bags.into_iter().zip(assignment).enumerate() {
            shards[s].push((t, bag));
        }
        ShardedEmbeddingSet { shards, num_tables }
    }

    /// Number of shards (including any empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total tables across all shards.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Global table indices held by `shard`, ascending.
    pub fn tables_on(&self, shard: usize) -> Vec<usize> {
        self.shards[shard].iter().map(|&(t, _)| t).collect()
    }

    /// Instantiated table bytes resident on `shard`.
    pub fn bytes_on(&self, shard: usize) -> usize {
        self.shards[shard]
            .iter()
            .map(|(_, b)| b.table().bytes())
            .sum()
    }

    /// Computes `shard`'s pooled partials. `all_indices[t]` is the
    /// batched index list for global table `t` (same shape as the
    /// unsharded per-table forward); only the shard's local tables are
    /// touched.
    ///
    /// # Panics
    ///
    /// Panics if `all_indices` does not cover every table, or an index
    /// list is invalid for its bag.
    pub fn forward_shard(&self, shard: usize, all_indices: &[Vec<Vec<u32>>]) -> ShardPartial {
        assert_eq!(
            all_indices.len(),
            self.num_tables,
            "expected index lists for {} tables, got {}",
            self.num_tables,
            all_indices.len()
        );
        ShardPartial {
            shard,
            outputs: self.shards[shard]
                .iter()
                .map(|(t, bag)| (*t, bag.forward_plain(&all_indices[*t])))
                .collect(),
        }
    }

    /// Reassembles per-table pooled outputs from shard partials, in
    /// global table order — the merge step a query's home node performs
    /// after the exchange. Bit-identical to running every table's bag
    /// unsharded, since each table pooled whole on one shard.
    ///
    /// # Panics
    ///
    /// Panics if the partials do not cover every table exactly once.
    pub fn merge(&self, partials: Vec<ShardPartial>) -> Vec<Matrix> {
        let mut merged: Vec<Option<Matrix>> = (0..self.num_tables).map(|_| None).collect();
        for p in partials {
            for (t, m) in p.outputs {
                assert!(
                    merged[t].is_none(),
                    "table {t} delivered by more than one partial"
                );
                merged[t] = Some(m);
            }
        }
        merged
            .into_iter()
            .enumerate()
            .map(|(t, m)| m.unwrap_or_else(|| panic!("no partial delivered table {t}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::Pooling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bags(n: usize, pooling: Pooling) -> Vec<EmbeddingBag> {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n)
            .map(|_| EmbeddingBag::new(64, 4, pooling, &mut rng))
            .collect()
    }

    fn indices(tables: usize, batch: usize, lookups: usize, seed: u64) -> Vec<Vec<Vec<u32>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..tables)
            .map(|_| {
                (0..batch)
                    .map(|_| (0..lookups).map(|_| rng.gen_range(0..64)).collect())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sharded_merge_equals_unsharded_bitexact() {
        for pooling in [Pooling::Sum, Pooling::Mean, Pooling::Concat] {
            let b = bags(5, pooling);
            let reference = b.clone();
            let idx = indices(5, 3, 4, 2);
            for assignment in [
                vec![0, 0, 0, 0, 0],
                vec![0, 1, 0, 1, 0],
                vec![2, 1, 0, 2, 1],
                vec![0, 1, 2, 3, 4],
            ] {
                let set = ShardedEmbeddingSet::new(b.clone(), &assignment);
                let partials: Vec<_> = (0..set.num_shards())
                    .map(|s| set.forward_shard(s, &idx))
                    .collect();
                let merged = set.merge(partials);
                for (t, bag) in reference.iter().enumerate() {
                    assert_eq!(
                        merged[t],
                        bag.forward_plain(&idx[t]),
                        "table {t} under {assignment:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_bookkeeping() {
        let set = ShardedEmbeddingSet::new(bags(4, Pooling::Sum), &[1, 0, 1, 1]);
        assert_eq!(set.num_shards(), 2);
        assert_eq!(set.num_tables(), 4);
        assert_eq!(set.tables_on(0), vec![1]);
        assert_eq!(set.tables_on(1), vec![0, 2, 3]);
        assert_eq!(set.bytes_on(0), 64 * 4 * 4);
        assert_eq!(set.bytes_on(1), 3 * 64 * 4 * 4);
    }

    #[test]
    fn partial_payload_counts_pooled_bytes() {
        let set = ShardedEmbeddingSet::new(bags(2, Pooling::Sum), &[0, 1]);
        let idx = indices(2, 3, 7, 5);
        let p = set.forward_shard(0, &idx);
        // Sum pooling: batch 3 rows of dim 4, f32.
        assert_eq!(p.payload_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn empty_shards_allowed() {
        // Assignment skipping shard 1 leaves it empty but addressable.
        let set = ShardedEmbeddingSet::new(bags(2, Pooling::Sum), &[0, 2]);
        assert_eq!(set.num_shards(), 3);
        let idx = indices(2, 2, 2, 9);
        let p = set.forward_shard(1, &idx);
        assert!(p.outputs.is_empty());
        assert_eq!(p.payload_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "cover every table")]
    fn wrong_assignment_length_panics() {
        let _ = ShardedEmbeddingSet::new(bags(3, Pooling::Sum), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "no partial delivered table 1")]
    fn missing_partial_panics() {
        let set = ShardedEmbeddingSet::new(bags(2, Pooling::Sum), &[0, 1]);
        let idx = indices(2, 2, 2, 3);
        let p0 = set.forward_shard(0, &idx);
        let _ = set.merge(vec![p0]);
    }

    #[test]
    #[should_panic(expected = "more than one partial")]
    fn duplicate_partial_panics() {
        let set = ShardedEmbeddingSet::new(bags(2, Pooling::Sum), &[0, 1]);
        let idx = indices(2, 2, 2, 3);
        let p0 = set.forward_shard(0, &idx);
        let p0b = set.forward_shard(0, &idx);
        let p1 = set.forward_shard(1, &idx);
        let _ = set.merge(vec![p0, p0b, p1]);
    }
}
