//! DIN-style local activation (attention) unit.
//!
//! Deep Interest Network models user interest by weighting each item in
//! the user's behavior history by its relevance to the *candidate* item
//! being scored (Section III-A1). The weight comes from a small MLP over
//! the pair features `[behavior, candidate, behavior − candidate,
//! behavior ⊙ candidate]`; the weighted behaviors are then sum-pooled.
//! The paper notes this is why DIN's runtime splits across concat, FC,
//! and sum operators rather than a single dominant one (Figure 3).

use crate::linear::Mlp;
use crate::profile::{OpKind, OpProfiler};
use drs_tensor::{add_scaled, softmax_in_place, Activation, Matrix};
use rand::Rng;

/// Attention scorer + weighted pooling over a behavior sequence.
///
/// # Examples
///
/// ```
/// use drs_nn::{AttentionUnit, OpProfiler};
/// use drs_tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let att = AttentionUnit::new(8, 16, &mut rng);
/// let batch = 2;
/// let seq = 5;
/// let candidate = Matrix::zeros(batch, 8);
/// let behaviors = Matrix::zeros(batch * seq, 8);
/// let mut prof = OpProfiler::new();
/// let pooled = att.forward(&candidate, &behaviors, seq, &mut prof);
/// assert_eq!((pooled.rows(), pooled.cols()), (2, 8));
/// ```
#[derive(Debug, Clone)]
pub struct AttentionUnit {
    scorer: Mlp,
    dim: usize,
}

impl AttentionUnit {
    /// Creates a unit for embeddings of width `dim` with a
    /// `4·dim → hidden → 1` scoring MLP.
    pub fn new(dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        AttentionUnit {
            scorer: Mlp::from_dims(
                &[4 * dim, hidden, 1],
                Activation::Relu,
                Activation::None,
                rng,
            ),
            dim,
        }
    }

    /// Embedding width this unit operates on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trainable parameters of the scoring MLP.
    pub fn param_count(&self) -> usize {
        self.scorer.param_count()
    }

    /// Computes per-behavior attention weights, softmax-normalized within
    /// each sample.
    ///
    /// * `candidate` — `B × dim`, the item being scored.
    /// * `behaviors` — `(B·seq) × dim`, sample-major (sample 0's `seq`
    ///   behaviors first).
    ///
    /// Returns `B·seq` weights in the same layout.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or `seq == 0`.
    pub fn scores(
        &self,
        candidate: &Matrix,
        behaviors: &Matrix,
        seq: usize,
        prof: &mut OpProfiler,
    ) -> Vec<f32> {
        assert!(seq > 0, "empty behavior sequence");
        assert_eq!(candidate.cols(), self.dim, "candidate width mismatch");
        assert_eq!(behaviors.cols(), self.dim, "behavior width mismatch");
        assert_eq!(
            behaviors.rows(),
            candidate.rows() * seq,
            "behavior count must be batch × seq"
        );
        prof.time(OpKind::Attention, || {
            let batch = candidate.rows();
            // Pair features for every (sample, behavior): one big batch
            // through the scoring MLP (this mirrors how the production
            // implementation batches the local activation unit).
            let mut feats = Matrix::zeros(batch * seq, 4 * self.dim);
            for b in 0..batch {
                let cand = candidate.row(b);
                for t in 0..seq {
                    let beh = behaviors.row(b * seq + t);
                    let row = feats.row_mut(b * seq + t);
                    let d = self.dim;
                    row[..d].copy_from_slice(beh);
                    row[d..2 * d].copy_from_slice(cand);
                    for i in 0..d {
                        row[2 * d + i] = beh[i] - cand[i];
                        row[3 * d + i] = beh[i] * cand[i];
                    }
                }
            }
            let logits = self.scorer.forward_plain(&feats);
            let mut weights: Vec<f32> = logits.as_slice().to_vec();
            for b in 0..batch {
                softmax_in_place(&mut weights[b * seq..(b + 1) * seq]);
            }
            weights
        })
    }

    /// Attention-weighted sum pooling: `B × dim` interest vector per
    /// sample.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AttentionUnit::scores`].
    pub fn forward(
        &self,
        candidate: &Matrix,
        behaviors: &Matrix,
        seq: usize,
        prof: &mut OpProfiler,
    ) -> Matrix {
        let weights = self.scores(candidate, behaviors, seq, prof);
        prof.time(OpKind::Attention, || {
            let batch = candidate.rows();
            let mut out = Matrix::zeros(batch, self.dim);
            for b in 0..batch {
                let row = out.row_mut(b);
                for t in 0..seq {
                    add_scaled(row, behaviors.row(b * seq + t), weights[b * seq + t]);
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit(dim: usize) -> AttentionUnit {
        let mut rng = StdRng::seed_from_u64(3);
        AttentionUnit::new(dim, 8, &mut rng)
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier_uniform(rows, cols, &mut rng)
    }

    #[test]
    fn scores_are_distributions() {
        let att = unit(4);
        let cand = random_matrix(3, 4, 1);
        let beh = random_matrix(3 * 6, 4, 2);
        let mut prof = OpProfiler::new();
        let w = att.scores(&cand, &beh, 6, &mut prof);
        assert_eq!(w.len(), 18);
        for b in 0..3 {
            let s: f32 = w[b * 6..(b + 1) * 6].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "sample {b} sums to {s}");
            assert!(w[b * 6..(b + 1) * 6].iter().all(|x| *x >= 0.0));
        }
        assert!(prof.count_for(OpKind::Attention) >= 1);
    }

    #[test]
    fn pooled_output_in_convex_hull_for_uniform_rows() {
        // If every behavior is the same vector v, the weighted sum is v.
        let att = unit(4);
        let cand = random_matrix(2, 4, 5);
        let mut beh = Matrix::zeros(2 * 3, 4);
        for r in 0..6 {
            beh.row_mut(r).copy_from_slice(&[0.5, -0.25, 0.125, 1.0]);
        }
        let mut prof = OpProfiler::new();
        let out = att.forward(&cand, &beh, 3, &mut prof);
        for b in 0..2 {
            for (o, e) in out.row(b).iter().zip(&[0.5, -0.25, 0.125, 1.0]) {
                assert!((o - e).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn relevance_ordering_is_input_dependent() {
        // Different candidates must produce different weights (the whole
        // point of "local" activation): check the scorer is not constant.
        let att = unit(4);
        let beh = random_matrix(4, 4, 8);
        let mut prof = OpProfiler::new();
        let w1 = att.scores(&random_matrix(1, 4, 10), &beh, 4, &mut prof);
        let w2 = att.scores(&random_matrix(1, 4, 11), &beh, 4, &mut prof);
        let diff: f32 = w1.iter().zip(&w2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "weights identical for different candidates");
    }

    #[test]
    #[should_panic(expected = "batch × seq")]
    fn wrong_behavior_count_panics() {
        let att = unit(4);
        let mut prof = OpProfiler::new();
        let _ = att.scores(
            &Matrix::zeros(2, 4),
            &Matrix::zeros(5, 4), // not 2 × seq
            3,
            &mut prof,
        );
    }

    #[test]
    #[should_panic(expected = "empty behavior")]
    fn zero_seq_panics() {
        let att = unit(4);
        let mut prof = OpProfiler::new();
        let _ = att.scores(&Matrix::zeros(1, 4), &Matrix::zeros(0, 4), 0, &mut prof);
    }
}
