//! Fully-connected layers and MLP stacks.

use crate::profile::{OpKind, OpProfiler};
use drs_tensor::{Activation, Matrix};
use rand::Rng;

/// One fully-connected layer: `act(x × W + b)`.
///
/// Weights are `in_dim × out_dim` so a batch `B × in_dim` maps to
/// `B × out_dim`.
#[derive(Debug, Clone)]
pub struct Linear {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Linear {
            weights: Matrix::xavier_uniform(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass for a batch (`B × in_dim` → `B × out_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        x.linear(&self.weights, &self.bias, self.activation)
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Multiply-accumulate FLOPs for a batch of `b` (2 FLOPs per MAC).
    pub fn flops(&self, b: usize) -> u64 {
        2 * (b * self.in_dim() * self.out_dim()) as u64
    }
}

/// A stack of fully-connected layers — the paper's `Dense-FC` and
/// `Predict-FC` stacks (Figure 2, Table I).
///
/// # Examples
///
/// ```
/// use drs_nn::Mlp;
/// use drs_tensor::{Activation, Matrix};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// // The paper writes stacks as e.g. "256-128-32"; with an input width
/// // of 64 that is dims = [64, 256, 128, 32].
/// let mlp = Mlp::from_dims(&[64, 256, 128, 32], Activation::Relu, Activation::Relu, &mut rng);
/// let y = mlp.forward_plain(&Matrix::zeros(4, 64));
/// assert_eq!(y.cols(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds a stack from layer widths `dims[0] → dims[1] → …`.
    ///
    /// Hidden layers use `hidden_act`; the final layer uses `final_act`
    /// (CTR heads pass [`Activation::Sigmoid`]).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn from_dims(
        dims: &[usize],
        hidden_act: Activation,
        final_act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            let is_last = w[1] == dims[dims.len() - 1] && layers.len() == dims.len() - 2;
            let act = if is_last { final_act } else { hidden_act };
            layers.push(Linear::new(w[0], w[1], act, rng));
        }
        Mlp { layers }
    }

    /// Input width expected by the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass without profiling.
    pub fn forward_plain(&self, x: &Matrix) -> Matrix {
        let mut cur = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Forward pass, attributing time to `kind` in `prof`.
    pub fn forward(&self, x: &Matrix, kind: OpKind, prof: &mut OpProfiler) -> Matrix {
        prof.time(kind, || self.forward_plain(x))
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Total FLOPs for a batch of `b`.
    pub fn flops(&self, b: usize) -> u64 {
        self.layers.iter().map(|l| l.flops(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(8, 3, Activation::Relu, &mut rng);
        let y = l.forward(&Matrix::zeros(5, 8));
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!(l.param_count(), 8 * 3 + 3);
        assert_eq!(l.flops(2), 2 * 2 * 8 * 3);
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::from_dims(
            &[10, 7, 4, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        assert_eq!(m.depth(), 3);
        assert_eq!(m.in_dim(), 10);
        assert_eq!(m.out_dim(), 1);
        let y = m.forward_plain(&Matrix::zeros(3, 10));
        assert_eq!((y.rows(), y.cols()), (3, 1));
        // Sigmoid head keeps outputs in (0, 1).
        assert!(y.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn mlp_relu_hidden_outputs_nonnegative() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Mlp::from_dims(&[6, 4], Activation::Relu, Activation::Relu, &mut rng);
        let x = Matrix::from_fn(8, 6, |r, c| ((r + c) as f32) - 5.0);
        let y = m.forward_plain(&x);
        assert!(y.as_slice().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn mlp_profiled_matches_plain() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mlp::from_dims(&[4, 4, 2], Activation::Relu, Activation::None, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let mut prof = OpProfiler::new();
        let a = m.forward(&x, OpKind::DenseFc, &mut prof);
        let b = m.forward_plain(&x);
        assert_eq!(a, b);
        assert_eq!(prof.count_for(OpKind::DenseFc), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_too_few_dims_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = Mlp::from_dims(&[5], Activation::Relu, Activation::Relu, &mut rng);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Mlp::from_dims(&[16, 8, 4], Activation::Relu, Activation::Relu, &mut rng);
        assert_eq!(m.flops(2), 2 * m.flops(1));
        assert_eq!(m.flops(64), 64 * m.flops(1));
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(77);
            Mlp::from_dims(&[5, 3], Activation::Relu, Activation::None, &mut rng)
        };
        let x = Matrix::from_fn(1, 5, |_, c| c as f32);
        assert_eq!(mk().forward_plain(&x), mk().forward_plain(&x));
    }
}
