//! Neural-network operators for recommendation models, with per-operator
//! wall-clock profiling.
//!
//! The generalized recommendation architecture of the paper (Figure 2)
//! composes a small set of operators:
//!
//! * [`Mlp`] — stacks of fully-connected layers (the Dense-FC and
//!   Predict-FC stacks),
//! * [`EmbeddingTable`] / [`EmbeddingBag`] — sparse categorical feature
//!   lookup with sum/mean/concat pooling,
//! * [`AttentionUnit`] — DIN's local activation unit (attention over a
//!   user-behavior sequence against a candidate item),
//! * [`GruCell`] / [`AuGru`] — DIEN's attention-gated recurrent layers,
//! * [`ShardedEmbeddingSet`] — table-wise sharded embedding lookup
//!   (local partial pools + gather/merge) for models whose tables
//!   exceed one node's memory,
//! * feature interaction (concat / sum) via `drs-tensor`.
//!
//! Every operator reports its execution time to an [`OpProfiler`] keyed
//! by [`OpKind`]; the Figure 3 operator-breakdown experiment is exactly a
//! dump of those profiles after running each model at batch size 64.
//!
//! # Examples
//!
//! ```
//! use drs_nn::{Mlp, OpKind, OpProfiler};
//! use drs_tensor::{Activation, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mlp = Mlp::from_dims(&[8, 4, 1], Activation::Relu, Activation::Sigmoid, &mut rng);
//! let x = Matrix::zeros(16, 8); // batch of 16
//! let mut prof = OpProfiler::new();
//! let y = mlp.forward(&x, OpKind::PredictFc, &mut prof);
//! assert_eq!(y.rows(), 16);
//! assert_eq!(y.cols(), 1);
//! ```

#![warn(missing_docs)]

mod attention;
mod embedding;
mod gru;
mod linear;
mod profile;
mod shard;

pub use attention::AttentionUnit;
pub use embedding::{EmbeddingBag, EmbeddingTable, Pooling};
pub use gru::{AuGru, GruCell};
pub use linear::{Linear, Mlp};
pub use profile::{OpKind, OpProfiler};
pub use shard::{ShardPartial, ShardedEmbeddingSet};
