//! Embedding tables and pooled lookup (the sparse-feature path).
//!
//! Embedding operations are the defining workload of recommendation
//! inference (Section II-A of the paper): each categorical feature owns a
//! table of latent vectors; a query performs one-hot or multi-hot lookups
//! into it, and the gathered rows are combined by a *pooling* operator.
//! The accesses are data-dependent and effectively random — on
//! production-scale tables every lookup is a DRAM access, which is why
//! DLRM-RMC1/2 and DIN are memory-bandwidth-bound.

use crate::profile::{OpKind, OpProfiler};
use drs_tensor::{add_scaled, Matrix};
use rand::Rng;

/// How gathered embedding rows are combined (Figure 2's "sparse feature
/// pooling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pooling {
    /// Element-wise sum of the gathered rows (DLRM's `SparseLengthsSum`).
    #[default]
    Sum,
    /// Element-wise mean of the gathered rows.
    Mean,
    /// Concatenation — requires every sample to gather the same number of
    /// rows (used by the one-hot models: NCF, WnD, MT-WnD).
    Concat,
}

/// One embedding table: `rows × dim` latent vectors.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a table with entries drawn from `U(-0.1, 0.1)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new(rows: usize, dim: usize, rng: &mut impl Rng) -> Self {
        assert!(rows > 0 && dim > 0, "embedding table must be non-empty");
        let data = (0..rows * dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
        EmbeddingTable { rows, dim, data }
    }

    /// Number of rows (feature cardinality).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrow the embedding vector for `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn lookup(&self, index: u32) -> &[f32] {
        let i = index as usize;
        assert!(i < self.rows, "embedding index {i} >= {}", self.rows);
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// An embedding table plus its pooling operator: the batched sparse
/// lookup primitive.
///
/// # Examples
///
/// ```
/// use drs_nn::{EmbeddingBag, Pooling};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let bag = EmbeddingBag::new(100, 8, Pooling::Sum, &mut rng);
/// // Batch of two samples, each looking up three rows.
/// let idx = vec![vec![1, 5, 9], vec![0, 0, 2]];
/// let pooled = bag.forward_plain(&idx);
/// assert_eq!((pooled.rows(), pooled.cols()), (2, 8));
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingBag {
    table: EmbeddingTable,
    pooling: Pooling,
}

impl EmbeddingBag {
    /// Creates a bag over a freshly initialized table.
    pub fn new(rows: usize, dim: usize, pooling: Pooling, rng: &mut impl Rng) -> Self {
        EmbeddingBag {
            table: EmbeddingTable::new(rows, dim, rng),
            pooling,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &EmbeddingTable {
        &self.table
    }

    /// The pooling operator.
    pub fn pooling(&self) -> Pooling {
        self.pooling
    }

    /// Output width for samples gathering `lookups` rows each.
    pub fn out_dim(&self, lookups: usize) -> usize {
        match self.pooling {
            Pooling::Sum | Pooling::Mean => self.table.dim,
            Pooling::Concat => self.table.dim * lookups,
        }
    }

    /// Batched pooled lookup. `indices[b]` lists the rows gathered by
    /// sample `b`.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, any index list is empty, any index
    /// is out of range, or (for [`Pooling::Concat`]) lookup counts
    /// differ across samples.
    pub fn forward_plain(&self, indices: &[Vec<u32>]) -> Matrix {
        assert!(!indices.is_empty(), "empty batch");
        let dim = self.table.dim;
        match self.pooling {
            Pooling::Sum | Pooling::Mean => {
                let mut out = Matrix::zeros(indices.len(), dim);
                for (b, idx) in indices.iter().enumerate() {
                    assert!(!idx.is_empty(), "sample {b} gathers zero rows");
                    let row = out.row_mut(b);
                    for &i in idx {
                        add_scaled(row, self.table.lookup(i), 1.0);
                    }
                    if self.pooling == Pooling::Mean {
                        let inv = 1.0 / idx.len() as f32;
                        for v in row.iter_mut() {
                            *v *= inv;
                        }
                    }
                }
                out
            }
            Pooling::Concat => {
                let lookups = indices[0].len();
                assert!(lookups > 0, "sample 0 gathers zero rows");
                assert!(
                    indices.iter().all(|l| l.len() == lookups),
                    "concat pooling requires equal lookup counts"
                );
                let mut out = Matrix::zeros(indices.len(), dim * lookups);
                for (b, idx) in indices.iter().enumerate() {
                    let row = out.row_mut(b);
                    for (j, &i) in idx.iter().enumerate() {
                        row[j * dim..(j + 1) * dim].copy_from_slice(self.table.lookup(i));
                    }
                }
                out
            }
        }
    }

    /// Batched pooled lookup, attributed to [`OpKind::Embedding`].
    pub fn forward(&self, indices: &[Vec<u32>], prof: &mut OpProfiler) -> Matrix {
        prof.time(OpKind::Embedding, || self.forward_plain(indices))
    }

    /// Bytes of table data touched by a batch gathering `lookups` rows
    /// per sample (the irregular-access traffic of Figure 1b).
    pub fn bytes_gathered(&self, batch: usize, lookups: usize) -> u64 {
        (batch * lookups * self.table.dim * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(pooling: Pooling) -> EmbeddingBag {
        let mut rng = StdRng::seed_from_u64(9);
        EmbeddingBag::new(16, 4, pooling, &mut rng)
    }

    #[test]
    fn sum_pooling_adds_rows() {
        let b = bag(Pooling::Sum);
        let idx = vec![vec![3, 3]];
        let out = b.forward_plain(&idx);
        let row3 = b.table().lookup(3);
        for (o, r) in out.row(0).iter().zip(row3) {
            assert!((o - 2.0 * r).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_pooling_divides() {
        let b = bag(Pooling::Mean);
        let out = b.forward_plain(&[vec![1, 1, 1, 1]]);
        for (o, r) in out.row(0).iter().zip(b.table().lookup(1)) {
            assert!((o - r).abs() < 1e-6);
        }
    }

    #[test]
    fn concat_pooling_widens() {
        let b = bag(Pooling::Concat);
        let out = b.forward_plain(&[vec![0, 1], vec![2, 3]]);
        assert_eq!(out.cols(), 8);
        assert_eq!(&out.row(1)[0..4], b.table().lookup(2));
        assert_eq!(&out.row(1)[4..8], b.table().lookup(3));
    }

    #[test]
    #[should_panic(expected = "equal lookup counts")]
    fn concat_ragged_panics() {
        let b = bag(Pooling::Concat);
        let _ = b.forward_plain(&[vec![0, 1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = ">= 16")]
    fn out_of_range_index_panics() {
        let b = bag(Pooling::Sum);
        let _ = b.forward_plain(&[vec![16]]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_lookup_panics() {
        let b = bag(Pooling::Sum);
        let _ = b.forward_plain(&[vec![]]);
    }

    #[test]
    fn out_dim_by_pooling() {
        assert_eq!(bag(Pooling::Sum).out_dim(80), 4);
        assert_eq!(bag(Pooling::Mean).out_dim(80), 4);
        assert_eq!(bag(Pooling::Concat).out_dim(3), 12);
    }

    #[test]
    fn bytes_gathered_scales() {
        let b = bag(Pooling::Sum);
        assert_eq!(b.bytes_gathered(2, 80), 2 * 80 * 4 * 4);
    }

    #[test]
    fn table_bytes() {
        let b = bag(Pooling::Sum);
        assert_eq!(b.table().bytes(), 16 * 4 * 4);
    }

    #[test]
    fn profiled_records_embedding_time() {
        let b = bag(Pooling::Sum);
        let mut prof = OpProfiler::new();
        let _ = b.forward(&[vec![1, 2]], &mut prof);
        assert_eq!(prof.count_for(OpKind::Embedding), 1);
    }
}
