//! Property-based tests for the NN operator library.

use drs_nn::{AttentionUnit, EmbeddingBag, GruCell, Mlp, OpProfiler, Pooling};
use drs_tensor::{Activation, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // Case budget audited so the whole workspace suite stays fast in
    // debug CI; raise at runtime with PROPTEST_CASES for a deeper soak.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sum-pooled embedding lookups are additive: pooling the
    /// concatenation of two index lists equals the sum of pooling each.
    #[test]
    fn embedding_sum_is_additive(
        a in prop::collection::vec(0u32..50, 1..8),
        b in prop::collection::vec(0u32..50, 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(5);
        let bag = EmbeddingBag::new(50, 8, Pooling::Sum, &mut rng);
        let combined: Vec<u32> = a.iter().chain(&b).cloned().collect();
        let whole = bag.forward_plain(&[combined]);
        let pa = bag.forward_plain(&[a]);
        let pb = bag.forward_plain(&[b]);
        for j in 0..8 {
            let sum = pa.get(0, j) + pb.get(0, j);
            prop_assert!((whole.get(0, j) - sum).abs() < 1e-4);
        }
    }

    /// Mean pooling of identical indices equals a single lookup.
    #[test]
    fn embedding_mean_idempotent_on_repeats(idx in 0u32..50, reps in 1usize..16) {
        let mut rng = StdRng::seed_from_u64(6);
        let bag = EmbeddingBag::new(50, 4, Pooling::Mean, &mut rng);
        let pooled = bag.forward_plain(&[vec![idx; reps]]);
        let single = bag.table().lookup(idx);
        for (j, &s) in single.iter().enumerate().take(4) {
            prop_assert!((pooled.get(0, j) - s).abs() < 1e-5);
        }
    }

    /// MLP outputs are finite for any bounded input (no activation
    /// blow-up through a deep ReLU stack).
    #[test]
    fn mlp_outputs_finite(vals in prop::collection::vec(-100.0f32..100.0, 16)) {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::from_dims(&[16, 32, 16, 8, 1], Activation::Relu, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_vec(1, 16, vals);
        let y = mlp.forward_plain(&x);
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!((0.0..=1.0).contains(&y.get(0, 0)));
    }

    /// Attention weights form a per-sample distribution for any batch,
    /// sequence length and embedding content.
    #[test]
    fn attention_weights_always_distributions(batch in 1usize..5, seq in 1usize..9, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(3);
        let att = AttentionUnit::new(8, 4, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(seed);
        let cand = Matrix::xavier_uniform(batch, 8, &mut data_rng);
        let beh = Matrix::xavier_uniform(batch * seq, 8, &mut data_rng);
        let mut prof = OpProfiler::new();
        let w = att.scores(&cand, &beh, seq, &mut prof);
        for s in 0..batch {
            let sum: f32 = w[s * seq..(s + 1) * seq].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "sample {s} sums to {sum}");
        }
    }

    /// GRU state stays in (-1, 1) from a zero start, for any input
    /// sequence (convexity of the update rule).
    #[test]
    fn gru_state_bounded(steps in 1usize..24, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(9);
        let cell = GruCell::new(6, 5, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(seed);
        let mut h = Matrix::zeros(2, 5);
        for _ in 0..steps {
            let x = Matrix::xavier_uniform(2, 6, &mut data_rng);
            h = cell.step(&x, &h, None);
        }
        prop_assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    /// AUGRU with all-zero attention is the identity on the state,
    /// regardless of inputs.
    #[test]
    fn augru_zero_attention_identity(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(13);
        let cell = GruCell::new(4, 4, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(seed);
        let h0 = Matrix::xavier_uniform(3, 4, &mut data_rng);
        let x = Matrix::xavier_uniform(3, 4, &mut data_rng);
        let h1 = cell.step(&x, &h0, Some(&[0.0, 0.0, 0.0]));
        for (a, b) in h1.as_slice().iter().zip(h0.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
