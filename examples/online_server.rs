//! The open-loop serving runtime in one page: a Poisson stream served
//! under a fixed policy vs. the online hill-climbing controller.
//!
//! ```bash
//! cargo run --release --example online_server
//! ```

use deeprecsys::prelude::*;

fn main() {
    let cfg = zoo::dlrm_rmc1();
    let cpu = CpuPlatform::skylake();
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::poisson(600.0),
        SizeDistribution::production(),
        7,
    )
    .take(8_000)
    .collect();

    // A deliberately bad fixed policy: unit batches drown the node in
    // per-request overhead.
    let bad = SchedulerPolicy::cpu_only(1);
    let fixed = Server::new(&cfg, cpu, None, ServerOptions::new(cpu.cores, bad));
    let r_fixed = fixed.serve_virtual(&queries);

    // Same stream, same bad starting point, controller attached.
    let opts = ServerOptions::new(cpu.cores, bad).with_controller(ControllerConfig::standard());
    let online = Server::new(&cfg, cpu, None, opts);
    let r_online = online.serve_virtual(&queries);

    println!(
        "fixed batch=1 : p95 {:8.2} ms, {:.0} QPS",
        r_fixed.latency.p95_ms, r_fixed.qps
    );
    println!(
        "online tuned  : p95 {:8.2} ms, {:.0} QPS (converged to batch {}, {} batches coalesced)",
        r_online.latency.p95_ms,
        r_online.qps,
        r_online.final_policy.max_batch,
        r_online.coalesced_batches,
    );
    println!(
        "controller trajectory (batch, window p95 ms): {:?}",
        r_online
            .batch_trajectory
            .iter()
            .map(|&(b, p)| (b, (p * 10.0).round() / 10.0))
            .collect::<Vec<_>>()
    );
}
