//! Extension beyond the paper's evaluation: a *mixed* Broadwell +
//! Skylake fleet (Section IV-A notes production datacenters run both)
//! served by a single DeepRecSched policy, compared against pure fleets
//! of either platform.
//!
//! Run with: `cargo run --release --example hetero_fleet`

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let cfg = zoo::dlrm_rmc1();
    let sla = SlaTier::Medium.sla_ms(&cfg);
    let load = 6_000.0;
    let queries = 20_000;

    println!("# Mixed-platform fleet: {} @ {sla} ms p95 target", cfg.name);
    println!("offered load {load} QPS across 8 machines\n");

    let fleets: Vec<(&str, Vec<CpuPlatform>)> = vec![
        ("8x Skylake", vec![CpuPlatform::skylake(); 8]),
        ("8x Broadwell", vec![CpuPlatform::broadwell(); 8]),
        (
            "4x Skylake + 4x Broadwell",
            (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        CpuPlatform::skylake()
                    } else {
                        CpuPlatform::broadwell()
                    }
                })
                .collect(),
        ),
    ];

    let tuned = DeepRecSched::new(SearchOptions::quick())
        .tune_cpu(
            &cfg,
            ClusterConfig::cluster(8, CpuPlatform::skylake(), None),
            sla,
        )
        .policy;

    let mut t = TextTable::new(vec![
        "fleet",
        "p50 ms",
        "p95 ms",
        "meets SLA",
        "QPS",
        "avg power W",
        "QPS/W",
    ]);
    for (label, cpus) in fleets {
        let sim = Simulation::new_heterogeneous(&cfg, cpus, None, tuned);
        let mut gen = QueryGenerator::new(
            ArrivalProcess::poisson(load),
            SizeDistribution::production(),
            77,
        );
        let r = sim.run(&mut gen, RunOptions::queries(queries));
        t.row(vec![
            label.to_string(),
            fmt3(r.latency.p50_ms),
            fmt3(r.latency.p95_ms),
            if r.latency.p95_ms <= sla {
                "yes".into()
            } else {
                "no".into()
            },
            fmt3(r.qps),
            fmt3(r.avg_power_w),
            fmt3(r.qps_per_watt),
        ]);
    }
    println!("{t}");
    println!(
        "Least-outstanding dispatch lets the faster Skylake nodes absorb more\n\
         of the load, so the mixed fleet lands between the pure fleets on both\n\
         tail latency and power efficiency."
    );
}
