//! Watch DeepRecSched hill-climb: batch-size phase on the CPU, then the
//! GPU query-size threshold phase, with the full trajectory printed.
//!
//! Run with: `cargo run --release --example tune_scheduler [model]`
//! (default model: DLRM-RMC1)

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "DLRM-RMC1".into());
    let cfg = zoo::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown model {name}; known: {:?}",
            zoo::all().iter().map(|m| m.name).collect::<Vec<_>>()
        );
        std::process::exit(1);
    });
    let sla = SlaTier::Medium.sla_ms(&cfg);
    let opts = SearchOptions::quick();
    let sched = DeepRecSched::new(opts);

    println!("# DeepRecSched tuning {} (p95 SLA {} ms)\n", cfg.name, sla);

    // Phase 1: batch size on CPU only.
    let cpu = sched.tune_cpu(&cfg, ClusterConfig::single_skylake(), sla);
    let mut t = TextTable::new(vec!["batch size", "max QPS under SLA"]);
    for &(b, q) in &cpu.trajectory {
        let marker = if b == cpu.policy.max_batch {
            " <= chosen"
        } else {
            ""
        };
        t.row(vec![b.to_string(), format!("{}{marker}", fmt3(q))]);
    }
    println!("## Phase 1: request- vs batch-parallelism (hill climb)\n\n{t}");

    // Phase 2: GPU query-size threshold.
    let gpu = sched.tune_gpu(
        &cfg,
        ClusterConfig::skylake_with_gpu(),
        sla,
        cpu.policy.max_batch,
    );
    let mut t = TextTable::new(vec!["GPU threshold", "max QPS under SLA"]);
    for &(th, q) in &gpu.trajectory {
        let marker = if Some(th) == gpu.policy.gpu_threshold {
            " <= chosen"
        } else {
            ""
        };
        t.row(vec![th.to_string(), format!("{}{marker}", fmt3(q))]);
    }
    println!("## Phase 2: accelerator offload threshold (hill climb)\n\n{t}");

    let baseline = max_qps_under_sla(
        &cfg,
        ClusterConfig::single_skylake(),
        SchedulerPolicy::static_baseline(40),
        sla,
        &opts,
    );
    println!("## Summary\n");
    println!(
        "- static baseline (batch 25):       {:>8} QPS",
        fmt3(baseline.max_qps)
    );
    println!(
        "- DeepRecSched-CPU (batch {:>4}):    {:>8} QPS ({:.2}x)",
        cpu.policy.max_batch,
        fmt3(cpu.qps),
        cpu.qps / baseline.max_qps.max(1e-9)
    );
    println!(
        "- DeepRecSched-GPU (thresh {:>4}):   {:>8} QPS ({:.2}x)",
        gpu.policy.gpu_threshold.unwrap_or(0),
        fmt3(gpu.qps),
        gpu.qps / baseline.max_qps.max(1e-9)
    );
}
