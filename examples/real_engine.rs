//! Serve a production-shaped query stream on the *real* multi-threaded
//! inference engine (actual forward passes on your CPU) and print the
//! measured throughput, latency distribution, and per-operator time
//! breakdown — a live miniature of Figures 3 and 8.
//!
//! Run with: `cargo run --release --example real_engine [model] [workers]`
//! (defaults: DIEN, 4 workers)

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "DIEN".into());
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let cfg = zoo::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown model {name}");
        std::process::exit(1);
    });

    // Laptop-scale weights (tables capped; access pattern preserved).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = Arc::new(RecModel::instantiate(
        &cfg,
        ModelScale::default_scale(),
        &mut rng,
    ));
    println!(
        "# Real engine: {} | {} workers | {} MB of embeddings instantiated",
        cfg.name,
        workers,
        model.embedding_bytes() / (1 << 20)
    );

    // A production-shaped burst of queries.
    let mut qgen = QueryGenerator::new(
        ArrivalProcess::poisson(1000.0),
        SizeDistribution::production(),
        11,
    );
    let sizes: Vec<u32> = (&mut qgen).take(64).map(|q| q.size).collect();
    let total_items: u64 = sizes.iter().map(|&s| s as u64).sum();
    println!(
        "serving {} queries ({} items, max query {})\n",
        sizes.len(),
        total_items,
        sizes.iter().max().unwrap()
    );

    let report = serve_closed_loop(
        Arc::clone(&model),
        &sizes,
        ServeOptions::new(workers, 64, 3),
    );

    println!(
        "throughput: {:.1} queries/s | {:.0} items/s",
        report.qps, report.items_per_s
    );
    println!(
        "latency: p50 {} ms | p95 {} ms | max {} ms\n",
        fmt3(report.latency.p50_ms),
        fmt3(report.latency.p95_ms),
        fmt3(report.latency.max_ms)
    );

    let mut t = TextTable::new(vec!["operator", "share of execution time"]);
    let fr = report.profile.fractions();
    for (kind, share) in OpKind::ALL.iter().zip(fr) {
        t.row(vec![kind.to_string(), format!("{:.1}%", share * 100.0)]);
    }
    println!("## Operator breakdown (Figure 3 view)\n\n{t}");
    let (dom, share) = report.profile.dominant().expect("profiled");
    println!(
        "bottleneck: {dom} ({:.0}%) — paper says \"{}\"",
        share * 100.0,
        cfg.paper_bottleneck
    );
}
