//! Cluster serving in one page: the same diurnal stream served by the
//! simulator, a single server, and a router-fronted heterogeneous
//! cluster — all selected through the unified `ServingStack` entry
//! point — plus a routing-policy shootout on the cluster.
//!
//! ```bash
//! cargo run --release --example cluster_serving
//! ```

use deeprecsys::prelude::*;

fn main() {
    let cfg = zoo::dlrm_rmc1();
    let queries: Vec<_> = QueryGenerator::new(
        ArrivalProcess::diurnal(2_200.0, 0.4, 20.0),
        SizeDistribution::production(),
        7,
    )
    .take(20_000)
    .collect();

    // One constructor for every execution layer (the infra's cluster
    // is homogeneous; `DeepRecInfra::stack` builds sim/server/cluster
    // over it).
    let infra = DeepRecInfra::new(cfg.clone()).with_cluster(ClusterConfig::cluster(
        4,
        CpuPlatform::skylake(),
        None,
    ));
    println!("## one stream, three execution layers\n");
    for spec in [
        StackSpec::Sim,
        StackSpec::Server,
        StackSpec::Cluster(RoutingPolicy::PowerOfTwoChoices { d: 2 }),
    ] {
        let stack = infra.stack(SchedulerPolicy::cpu_only(64), spec);
        let r = stack.serve_queries(&queries);
        println!(
            "{:<22} p95 {:>8.2} ms   {:>6.0} QPS",
            stack.label(),
            r.latency.p95_ms,
            r.qps
        );
    }

    // A heterogeneous fleet: the routing policy is the knob.
    let topology = ClusterTopology::new(vec![
        NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
        NodeSpec::with_gpu(CpuPlatform::skylake(), GpuPlatform::gtx_1080ti()),
        NodeSpec::cpu_only(CpuPlatform::broadwell()),
        NodeSpec::cpu_only(CpuPlatform::broadwell()),
    ]);
    println!("\n## routing policy shootout (2x Skylake+GPU, 2x Broadwell)\n");
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::PowerOfTwoChoices { d: 2 },
        RoutingPolicy::SizeAware,
    ] {
        let cluster = Cluster::new(
            &cfg,
            topology.clone(),
            routing,
            ServerOptions::new(40, SchedulerPolicy::with_gpu(64, 300)),
        );
        let r = cluster.serve_virtual(&queries);
        println!(
            "{:<22} p95 {:>8.2} ms   {:>6.0} QPS   split {:?}",
            routing.label(),
            r.latency.p95_ms,
            r.qps,
            r.node_queries
        );
    }
}
