//! Simulate a small datacenter: eight Skylake machines serving DLRM-RMC2
//! under a diurnal production-like load, comparing the static baseline
//! against a DeepRecSched-tuned batch size over a full (virtual) day.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let cfg = zoo::dlrm_rmc2();
    let machines = 8;
    let cluster = ClusterConfig::cluster(machines, CpuPlatform::skylake(), None);

    // Offered load: ~70% of the cluster's tuned capacity, swinging ±35%
    // over a (scaled-down) day so the peak stresses the tail.
    let base_qps = 12_000.0;
    let day_s = 240.0; // a "day" compressed into 4 virtual minutes
    let queries = 60_000;

    println!(
        "# Datacenter simulation: {} on {machines} Skylake machines",
        cfg.name
    );
    println!("diurnal Poisson load: {base_qps} QPS +/- 35% over a {day_s}s cycle\n");

    let mut t = TextTable::new(vec![
        "policy", "batch", "p50 ms", "p95 ms", "p99 ms", "QPS", "CPU util", "QPS/W",
    ]);

    let tuned = DeepRecSched::new(SearchOptions::quick()).tune_cpu(
        &cfg,
        cluster,
        SlaTier::Medium.sla_ms(&cfg),
    );

    for (label, policy) in [
        ("static baseline", SchedulerPolicy::static_baseline(40)),
        ("DeepRecSched", tuned.policy),
    ] {
        let sim = Simulation::new(&cfg, cluster, policy);
        let mut gen = QueryGenerator::new(
            ArrivalProcess::diurnal(base_qps, 0.35, day_s),
            SizeDistribution::production(),
            2024,
        );
        let r = sim.run(&mut gen, RunOptions::queries(queries));
        t.row(vec![
            label.to_string(),
            policy.max_batch.to_string(),
            fmt3(r.latency.p50_ms),
            fmt3(r.latency.p95_ms),
            fmt3(r.latency.p99_ms),
            fmt3(r.qps),
            format!("{:.0}%", r.cpu_utilization * 100.0),
            fmt3(r.qps_per_watt),
        ]);
    }
    println!("{t}");
    println!(
        "The tuned batch size cuts the diurnal-peak tail latency — the same\n\
         effect the paper measured on hundreds of production machines (Fig. 13)."
    );
}
