//! Quickstart: score a query with a real model, then measure how much
//! load the same model sustains under its SLA in simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use deeprecsys::prelude::*;
use rand::SeedableRng;

fn main() {
    // --- 1. Real inference -------------------------------------------------
    // Instantiate Facebook's DLRM-RMC1 (Table I) at laptop scale and
    // score one 8-item query on the actual CPU.
    let cfg = zoo::dlrm_rmc1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
    let inputs = model.generate_inputs(8, &mut rng);
    let mut prof = OpProfiler::new();
    let start = std::time::Instant::now();
    let ctrs = model.forward(&inputs, &mut prof);
    let elapsed = start.elapsed();

    println!("model: {} ({})", model.name(), cfg.domain);
    println!("scored {} candidate items in {elapsed:?}", ctrs.len());
    for (i, ctr) in ctrs.iter().enumerate() {
        println!("  item {i}: CTR = {ctr:.4}");
    }
    let (dominant, frac) = prof.dominant().expect("profiled");
    println!(
        "dominant operator: {dominant} ({:.0}% of time)",
        frac * 100.0
    );

    // --- 2. At-scale serving ----------------------------------------------
    // The same model served on a 40-core Skylake under production
    // traffic: how many queries per second fit under the 100 ms p95 SLA?
    let infra = DeepRecInfra::new(cfg.clone());
    let baseline = infra.baseline_policy();
    let opts = SearchOptions::quick();
    let cap = infra.max_qps(baseline, cfg.sla_ms, &opts);
    println!(
        "\nstatic baseline (batch {}): {:.0} QPS under {} ms p95 SLA",
        baseline.max_batch, cap.max_qps, cfg.sla_ms
    );

    // DeepRecSched finds a better batch size by hill climbing.
    let tuned = infra.tune(cfg.sla_ms, &opts);
    println!(
        "DeepRecSched (batch {}): {:.0} QPS  ({:.2}x the baseline)",
        tuned.policy.max_batch,
        tuned.qps,
        tuned.qps / cap.max_qps.max(1e-9)
    );
}
