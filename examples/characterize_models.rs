//! Workload characterization of the eight-model zoo: Table I geometry,
//! analytic FLOPs/bytes, arithmetic intensity and sparse-traffic share
//! (the Figure 1 view), plus each model's GPU crossover batch.
//!
//! Run with: `cargo run --release --example characterize_models`

use deeprecsys::models::characterize::characterize;
use deeprecsys::prelude::*;
use deeprecsys::table::{fmt3, TextTable};

fn main() {
    let cpu = CpuPlatform::skylake();
    let gpu = GpuPlatform::gtx_1080ti();

    let mut t = TextTable::new(vec![
        "model",
        "domain",
        "tables",
        "lookups/item",
        "emb GB (paper)",
        "MFLOPs/item",
        "AI@1",
        "AI@64",
        "sparse%@64",
        "GPU crossover",
        "SLA ms",
    ]);

    for cfg in zoo::all() {
        let ch = characterize(&cfg);
        let cost = ModelCost::new(&cfg);
        let crossover = cost
            .gpu_crossover_batch(&cpu, &gpu)
            .map_or("never".to_string(), |b| b.to_string());
        t.row(vec![
            cfg.name.to_string(),
            cfg.domain.to_string(),
            cfg.tables.len().to_string(),
            cfg.lookups_per_item().to_string(),
            fmt3(cfg.embedding_bytes() as f64 / 1e9),
            fmt3(ch.flops_per_item / 1e6),
            fmt3(ch.arithmetic_intensity(1)),
            fmt3(ch.arithmetic_intensity(64)),
            format!("{:.0}%", ch.sparse_byte_fraction(64) * 100.0),
            crossover,
            fmt3(cfg.sla_ms),
        ]);
    }
    println!("# DeepRecInfra model zoo characterization\n");
    println!("{t}");
    println!(
        "Reference points (Fig. 1a): {:?}",
        deeprecsys::models::characterize::reference_points()
    );
    println!(
        "\nRecommendation models sit at arithmetic intensities of ~0.1-10 FLOPs/B —\n\
         memory-bound territory — versus ~40 for ResNet50, reproducing the paper's\n\
         Figure 1 contrast between recommendation and CNN/RNN workloads."
    );
}
