//! Integration: every Table-I model runs end to end through the real
//! engine and produces valid CTRs.

use deeprecsys::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn all_models_serve_on_the_real_engine() {
    for cfg in zoo::all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let model = Arc::new(RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng));
        let sizes = [1u32, 17, 40];
        let report = serve_closed_loop(Arc::clone(&model), &sizes, ServeOptions::new(2, 16, 5));
        assert_eq!(report.latency.count, sizes.len(), "{}", cfg.name);
        assert!(report.qps > 0.0, "{}", cfg.name);
        assert!(report.profile.total().as_nanos() > 0, "{}", cfg.name);
    }
}

#[test]
fn measured_bottleneck_matches_paper_for_extreme_models() {
    // At realistic (default) scale the measured operator mix should
    // reproduce Table II for the clearest-cut models. We use DIEN
    // (recurrent-dominated) and WND (MLP-dominated): their dominance is
    // structural, not a close call.
    use deeprecsys::engine::profile_operators;
    use deeprecsys::models::characterize::classify_bottleneck;

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let dien = RecModel::instantiate(&zoo::dien(), ModelScale::tiny(), &mut rng);
    let prof = profile_operators(&dien, 64, 2, 3);
    assert_eq!(
        classify_bottleneck(&prof.fractions()),
        "Attention-based GRU dominated"
    );

    let wnd = RecModel::instantiate(&zoo::wide_and_deep(), ModelScale::tiny(), &mut rng);
    let prof = profile_operators(&wnd, 64, 2, 3);
    assert_eq!(classify_bottleneck(&prof.fractions()), "MLP dominated");
}

#[test]
fn batch_scaling_monotone_on_real_hardware() {
    // Real measured latency grows with batch; per-item latency shrinks —
    // the same shape the analytic cost model encodes. This ties the
    // simulator's assumptions back to physical execution.
    use deeprecsys::engine::measure_batch_latency;

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let model = RecModel::instantiate(&zoo::dlrm_rmc1(), ModelScale::tiny(), &mut rng);
    let med = |batch: usize| {
        let mut v = measure_batch_latency(&model, batch, 7, 9);
        v.sort();
        v[v.len() / 2].as_secs_f64()
    };
    let t1 = med(1);
    let t64 = med(64);
    assert!(t64 > t1, "batch 64 {t64} vs batch 1 {t1}");
    assert!(
        t64 / 64.0 < t1,
        "per-item cost should amortize: {} vs {t1}",
        t64 / 64.0
    );
}
