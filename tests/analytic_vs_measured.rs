//! Cross-validation: the analytic per-operator cost model
//! (`drs-models::opcost`) must agree with *real execution* on which
//! operator class dominates — the two independent derivations of
//! Table II.

use deeprecsys::engine::profile_operators;
use deeprecsys::models::characterize::classify_bottleneck;
use deeprecsys::models::opcost::op_breakdown;
use deeprecsys::prelude::*;
use rand::SeedableRng;

/// Reference two-resource parameters for the analytic fractions: an
/// effective Skylake core (post-framework-tax) with contended gather
/// bandwidth.
const PEAK_GFLOPS: f64 = 60.0;
const GATHER_BW: f64 = 3.0;
const STREAM_BW: f64 = 60.0;

#[test]
fn analytic_and_measured_agree_on_clear_cut_models() {
    // WND (pure GEMM) and DIEN (recurrent) have structural bottlenecks
    // that survive the tiny-scale measurement caveat; the analytic and
    // measured classifications must coincide.
    for (cfg, expect) in [
        (zoo::wide_and_deep(), "MLP dominated"),
        (zoo::dien(), "Attention-based GRU dominated"),
    ] {
        let analytic = classify_bottleneck(&op_breakdown(&cfg).time_fractions(
            64,
            PEAK_GFLOPS,
            GATHER_BW,
            STREAM_BW,
        ));
        assert_eq!(analytic, expect, "{} analytic", cfg.name);

        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let model = RecModel::instantiate(&cfg, ModelScale::tiny(), &mut rng);
        let measured = classify_bottleneck(&profile_operators(&model, 64, 2, 7).fractions());
        assert_eq!(measured, expect, "{} measured", cfg.name);
    }
}

#[test]
fn analytic_fractions_track_structure_across_the_zoo() {
    // Weaker, zoo-wide invariant: the analytic MLP share must dominate
    // exactly for the models the paper calls MLP-dominated, and the
    // embedding share for the embedding-dominated ones.
    for cfg in zoo::all() {
        let fr = op_breakdown(&cfg).time_fractions(64, PEAK_GFLOPS, GATHER_BW, STREAM_BW);
        let mlp = fr[0] + fr[1];
        let emb = fr[2];
        if cfg.paper_bottleneck == "MLP dominated" {
            assert!(mlp > emb, "{}: mlp {mlp} vs emb {emb}", cfg.name);
        }
        if cfg.paper_bottleneck == "Embedding dominated" {
            assert!(emb > mlp, "{}: emb {emb} vs mlp {mlp}", cfg.name);
        }
    }
}

#[test]
fn flop_counts_match_between_analytic_paths() {
    // The aggregate characterization and the per-op breakdown are
    // independent walks over the config; their totals must be equal.
    use deeprecsys::models::characterize::characterize;
    for cfg in zoo::all() {
        let agg = characterize(&cfg).flops_per_item;
        let split = op_breakdown(&cfg).total_flops_per_item();
        assert!(
            (agg - split).abs() / agg < 1e-9,
            "{}: {agg} vs {split}",
            cfg.name
        );
    }
}
