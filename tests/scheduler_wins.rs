//! Integration: the paper's headline claims hold end to end in the
//! simulator — DeepRecSched beats the static baseline, and the GPU path
//! beats CPU-only.

use deeprecsys::prelude::*;

fn quick() -> SearchOptions {
    SearchOptions::quick()
}

#[test]
fn deeprecsched_cpu_beats_static_baseline_across_model_classes() {
    // One representative per bottleneck class (full 8-model sweep lives
    // in the fig11 experiment binary).
    for cfg in [zoo::dlrm_rmc1(), zoo::dlrm_rmc3(), zoo::dien()] {
        let infra = DeepRecInfra::new(cfg.clone());
        let sla = SlaTier::Medium.sla_ms(&cfg);
        let baseline = infra.max_qps(infra.baseline_policy(), sla, &quick());
        let tuned = infra.tune(sla, &quick());
        assert!(
            tuned.qps >= baseline.max_qps,
            "{}: tuned {} < baseline {}",
            cfg.name,
            tuned.qps,
            baseline.max_qps
        );
    }
}

#[test]
fn gpu_offload_improves_over_cpu_only_for_rmc1() {
    let cfg = zoo::dlrm_rmc1();
    let sla = SlaTier::Medium.sla_ms(&cfg);
    let cpu_infra = DeepRecInfra::new(cfg.clone());
    let gpu_infra = DeepRecInfra::new(cfg.clone()).with_cluster(ClusterConfig::skylake_with_gpu());
    let cpu = cpu_infra.tune(sla, &quick());
    let gpu = gpu_infra.tune(sla, &quick());
    assert!(
        gpu.qps >= cpu.qps,
        "GPU tune {} < CPU tune {}",
        gpu.qps,
        cpu.qps
    );
}

#[test]
fn tuned_batch_size_responds_to_sla_tier() {
    // Figure 9 / 12a: tighter SLAs push the optimum toward smaller
    // batches (more request-level parallelism). Allow equality — the
    // coarse quick ladder can land on the same rung.
    let cfg = zoo::dlrm_rmc3();
    let infra = DeepRecInfra::new(cfg.clone());
    let low = infra.tune(SlaTier::Low.sla_ms(&cfg), &quick());
    let high = infra.tune(SlaTier::High.sla_ms(&cfg), &quick());
    assert!(
        low.policy.max_batch <= high.policy.max_batch,
        "low-SLA batch {} > high-SLA batch {}",
        low.policy.max_batch,
        high.policy.max_batch
    );
}

#[test]
fn results_are_reproducible() {
    let cfg = zoo::ncf();
    let infra = DeepRecInfra::new(cfg.clone());
    let a = infra.tune(5.0, &quick());
    let b = infra.tune(5.0, &quick());
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.qps, b.qps);
}
