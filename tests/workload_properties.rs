//! Integration + property tests tying the workload model to the
//! system-level claims that depend on it.

use deeprecsys::prelude::*;
use deeprecsys::query::{tail_work_share, MAX_QUERY_SIZE};
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn production_distribution_drives_different_optimum_than_lognormal() {
    // Figure 12a's setup: the same model + SLA tuned under the two
    // distributions. The production tail admits (at least) as large an
    // optimal batch; the distributions must be distinguishable to the
    // tuner (trajectories differ).
    let cfg = zoo::dlrm_rmc1();
    let sla = SlaTier::Medium.sla_ms(&cfg);
    let opts = SearchOptions::quick();
    let prod = DeepRecInfra::new(cfg.clone()).tune(sla, &opts);
    let logn = DeepRecInfra::new(cfg.clone())
        .with_size_dist(SizeDistribution::lognormal_matched())
        .tune(sla, &opts);
    assert_ne!(
        prod.trajectory, logn.trajectory,
        "tuner cannot distinguish the distributions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulated completions conserve queries for any sane policy.
    #[test]
    fn sim_conserves_queries(batch in 1u32..512, seed in 0u64..100, rate in 50.0f64..5000.0) {
        let infra = DeepRecInfra::new(zoo::ncf());
        let r = infra.simulate(SchedulerPolicy::cpu_only(batch), rate, 300, seed);
        prop_assert_eq!(r.completed, 270); // 10% warm-up of 300
        prop_assert!(r.latency.p95_ms >= r.latency.p50_ms);
        prop_assert!(r.latency.max_ms >= r.latency.p99_ms);
    }

    /// Query splitting conserves work under the production distribution.
    #[test]
    fn split_conserves_production_sizes(seed in 0u64..500, batch in 1u32..1024) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = SizeDistribution::production();
        for _ in 0..50 {
            let size = d.sample(&mut rng);
            let parts = deeprecsys::query::split_query(size, batch);
            prop_assert_eq!(parts.iter().sum::<u32>(), size);
            prop_assert!(parts.len() as u32 == size.div_ceil(batch));
        }
    }

    /// The heavy-tail work-share statistic stays in the calibrated band
    /// for any seed (Figure 6's premise is seed-independent).
    #[test]
    fn tail_work_share_stable(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sizes = SizeDistribution::production().sample_n(20_000, &mut rng);
        let share = tail_work_share(&sizes, 0.75);
        prop_assert!((0.40..0.75).contains(&share), "share {share}");
        prop_assert!(sizes.iter().all(|&s| s <= MAX_QUERY_SIZE));
    }
}
