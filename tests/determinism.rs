//! Determinism contract: with a fixed seed, the workload generator and
//! the simulator must be **byte-identical** across runs and across
//! processes. Every benchmark comparison, paired A/B experiment, and
//! figure regeneration in this repo rests on this property; if one of
//! these tests fails, no perf number measured afterwards is trustworthy.
//!
//! Regression note (PR 8): `sim/runner.rs` swapped its in-flight
//! `HashMap<u64, QueryState>` for a `BTreeMap` under `drs-lint`'s
//! `hash-iter` rule; access is purely keyed, and the simulator's
//! reports were verified byte-identical across the change.

use deeprecsys::prelude::*;
use deeprecsys::query::Trace;
use deeprecsys::sched::SlaTier;

/// Two generators with the same seed must serialize identical traces,
/// and a different seed must not.
#[test]
fn query_generator_is_byte_identical_per_seed() {
    let make = |seed: u64| {
        let gen = QueryGenerator::new(
            ArrivalProcess::poisson(1_000.0),
            SizeDistribution::production(),
            seed,
        );
        let mut buf = Vec::new();
        Trace::record(gen, 5_000)
            .write(&mut buf)
            .expect("in-memory write");
        buf
    };
    assert_eq!(make(7), make(7), "same seed must reproduce the trace");
    assert_ne!(make(7), make(8), "different seeds must differ");
}

/// The diurnal (time-varying) arrival path must be as reproducible as
/// the plain Poisson path.
#[test]
fn diurnal_arrivals_are_byte_identical_per_seed() {
    let make = || {
        let gen = QueryGenerator::new(
            ArrivalProcess::diurnal(500.0, 0.6, 86_400.0),
            SizeDistribution::production(),
            21,
        );
        let mut buf = Vec::new();
        Trace::record(gen, 2_000)
            .write(&mut buf)
            .expect("in-memory write");
        buf
    };
    assert_eq!(make(), make());
}

/// Two simulator runs with identical inputs must produce reports whose
/// full rendering (every latency sample, every counter) is identical.
#[test]
fn simulator_report_is_byte_identical_per_seed() {
    let run = |seed: u64| {
        let sim = Simulation::new(
            &zoo::dlrm_rmc1(),
            ClusterConfig::skylake_with_gpu(),
            SchedulerPolicy::with_gpu(64, 200),
        );
        let mut gen = QueryGenerator::new(
            ArrivalProcess::poisson(800.0),
            SizeDistribution::production(),
            seed,
        );
        let report = sim.run(&mut gen, RunOptions::queries(1_000));
        // Debug rendering covers every field, including the raw
        // latency vector: any drift anywhere shows up here.
        format!("{report:?}")
    };
    assert_eq!(run(11), run(11), "same seed must reproduce the report");
    assert_ne!(run(11), run(12), "different seeds must differ");
}

/// The full tuner (many chained QPS searches) must also be exactly
/// reproducible — this exercises long RNG streams through the climber.
#[test]
fn tuner_is_exactly_reproducible() {
    let tune = || {
        let cfg = zoo::ncf();
        let t = DeepRecInfra::new(cfg.clone())
            .tune(SlaTier::Medium.sla_ms(&cfg), &SearchOptions::quick());
        (format!("{:?}", t.policy), t.qps.to_bits(), t.trajectory)
    };
    assert_eq!(tune(), tune());
}
