//! Root umbrella for the DeepRecSys reproduction; see the `deeprecsys` crate docs.
#![warn(missing_docs)]
pub use deeprecsys::prelude;
