//! Vendored, offline stand-in for the parts of [`criterion`] this
//! workspace's benches use.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the same authoring surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`]) backed by a deliberately simple measurement loop:
//! a short warm-up, then a fixed wall-clock budget per benchmark, with
//! median and min times (and derived element throughput) printed to
//! stdout. No plots, no statistics engine, no saved baselines.
//!
//! Swapping back to upstream criterion later is a one-line change in
//! the workspace manifest; no bench source needs to move.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity. Mirrors `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally carrying a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter, used inside a named group.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a displayed benchmark id (accepts `&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display string for this id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples_ns: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly within this bench's time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few untimed runs to fault in caches/allocations.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < self.budget || self.samples_ns.len() < 5 {
            let t = Instant::now();
            black_box(routine());
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
            if self.samples_ns.len() >= 100_000 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    /// Group-local budget; starts at the harness default and is only
    /// touched by `sample_size`, so one group's choice never leaks
    /// into the next group or overrides `CRITERION_BUDGET_MS`.
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count. Accepted for API compatibility;
    /// this harness is time-budgeted, so the value scales this
    /// *group's* budget (upstream's default is 100 samples, so
    /// `sample_size(10)` means "about 10× cheaper").
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget = self.budget.mul_f64((n as f64 / 100.0).clamp(0.05, 10.0));
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples_ns: Vec::new(),
            budget: self.budget,
        };
        f(&mut b);
        report(&full, &mut b.samples_ns, self.throughput);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalizes reports here; ours prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples_ns: &mut [f64], throughput: Option<Throughput>) {
    if samples_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} median {:>12}  min {:>12}{extra}  ({} samples)",
        fmt_ns(median),
        fmt_ns(min),
        samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` runs quick; CRITERION_BUDGET_MS
        // raises the per-bench budget for more stable numbers.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            budget: self.budget,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            budget: self.budget,
        };
        f(&mut b);
        report(name, &mut b.samples_ns, None);
        self
    }
}

/// Declares a benchmark group function, mirroring upstream
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("vendored");
        g.sample_size(10);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
