//! Vendored, offline stand-in for the parts of the [`rand`] crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal implementation instead. It is **API-compatible**
//! with `rand` 0.8 for the surface the repo needs — [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] — and is fully
//! deterministic: the same seed always yields the same stream, on every
//! platform, forever. That determinism is load-bearing: the tier-1
//! determinism test (`tests/determinism.rs`) and every benchmark
//! comparison assume seeded runs are byte-identical.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

/// The core of every random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator, constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`]: the user-facing sampling API.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits onto `[0, 1)` as an `f32`.
#[inline]
fn uniform_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Lemire-style unbiased bounded integer sampling on `[0, bound)`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the top of the range keeps the draw
    // exactly uniform while staying deterministic for a fixed stream.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $uniform:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $uniform(rng.next_u64());
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = $uniform(rng.next_u64());
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, uniform_f32; f64, uniform_f64);

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// Internally xoshiro256++ (Blackman & Vigna), seeded through
    /// SplitMix64 exactly as the reference implementation recommends.
    /// Unlike upstream `rand`, the algorithm is pinned forever: seeded
    /// streams are part of this repo's reproducibility contract.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(
                a.gen_range(0u64..u64::MAX / 2),
                b.gen_range(0u64..u64::MAX / 2)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let w: i32 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_range_covers_interior() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_half = 0;
        let n = 10_000;
        for _ in 0..n {
            if rng.gen_range(0.0f64..1.0) < 0.5 {
                lo_half += 1;
            }
        }
        // Crude uniformity check: both halves get substantial mass.
        assert!(
            lo_half > n / 3 && lo_half < 2 * n / 3,
            "lo_half = {lo_half}"
        );
    }
}
