//! Vendored, offline stand-in for the parts of [`crossbeam`] this
//! workspace uses: the multi-producer **multi-consumer** unbounded
//! channel (`std::sync::mpsc` receivers cannot be cloned, which the
//! engine's worker pool requires).
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` with sender/receiver
//! reference counting for upstream-compatible disconnect semantics:
//! `recv` fails once the queue is empty and every `Sender` is dropped,
//! and `send` fails once every `Receiver` is dropped.
//!
//! [`crossbeam`]: https://crates.io/crates/crossbeam

#![warn(missing_docs)]

pub mod channel {
    //! MPMC channels, mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back, as upstream does.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable across threads (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Like [`recv`](Self::recv) but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<u64>();
            let (tx_done, rx_done) = unbounded::<u64>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let tx_done = tx_done.clone();
                    thread::spawn(move || {
                        while let Ok(v) = rx.recv() {
                            tx_done.send(v * 2).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx_done);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx); // workers drain then exit on disconnect
            let mut sum = 0;
            while let Ok(v) = rx_done.recv() {
                sum += v;
            }
            assert_eq!(sum, (0..100).map(|i| i * 2).sum::<u64>());
            for w in workers {
                w.join().unwrap();
            }
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
