//! Vendored, offline stand-in for the parts of [`proptest`] this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! a deterministic, generation-only property-testing harness with the
//! same surface syntax as upstream `proptest`:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * range and [`prop::collection::vec`] strategies plus
//!   [`Strategy::prop_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   re-running is already minimal effort because generation is fully
//!   deterministic (seeded per test name + case index).
//! * **Capped case counts.** The default is [`DEFAULT_CASES`] cases per
//!   property (upstream defaults to 256) so the whole workspace suite
//!   stays fast in debug builds. Set the `PROPTEST_CASES` environment
//!   variable to raise it for a deeper soak.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of cases per property (upstream uses 256; this
/// workspace caps lower to keep `cargo test` fast in debug mode).
pub const DEFAULT_CASES: u32 = 32;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: the configured count, unless the
    /// `PROPTEST_CASES` environment variable raises it (it can only
    /// deepen a soak, never undercut an audited per-file budget).
    /// Unparsable values are rejected loudly rather than silently
    /// pretending the requested soak ran.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.parse::<u32>() {
                Ok(n) => self.cases.max(n),
                Err(_) => panic!("PROPTEST_CASES={v:?} is not a case count"),
            },
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Error produced by a failing `prop_assert!`-family macro.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG driving strategy generation. Deterministic per (test name,
/// case index): failures are reproducible by construction.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps streams independent between
        // properties without any global state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5eed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A source of random values of one type — the generation half of
/// upstream proptest's `Strategy` (no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`, as upstream's `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Number of elements a collection strategy should produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, runner: &mut TestRunner) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            runner.rng().gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Namespace mirror of upstream `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRunner};

        /// Strategy for `Vec`s whose length is drawn from `size` and
        /// whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let n = self.size.sample(runner);
                (0..n).map(|_| self.element.sample(runner)).collect()
            }
        }
    }
}

/// One-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRunner,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with its deterministic seed reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Declares property tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0f64..1.0, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = __cfg.effective_cases();
                for __case in 0..__cases {
                    let mut __runner =
                        $crate::TestRunner::for_case(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __runner);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name), __case, __cases, e
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -1.5f64..=1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| "x".repeat(n))) {
            prop_assert_eq!(s.chars().filter(|&c| c == 'x').count(), s.len());
        }

        #[test]
        fn exact_len_vec(v in prop::collection::vec(0f32..1.0, 12)) {
            prop_assert_eq!(v.len(), 12);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0u64..1_000_000, 5..30);
        let a = s.sample(&mut TestRunner::for_case("det", 3));
        let b = s.sample(&mut TestRunner::for_case("det", 3));
        assert_eq!(a, b);
        let c = s.sample(&mut TestRunner::for_case("det", 4));
        assert_ne!(a, c);
    }
}
